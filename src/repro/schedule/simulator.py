"""High-level scheduling simulator (paper §4.4).

Estimates how long a candidate layout will take to execute **without running
any application code**: task durations, exit choices, and allocation counts
all come from the profile's Markov model. The simulator mirrors the real
runtime's structure — per-core parameter sets, FIFO invocation formation,
round-robin/tag-hash routing, mesh transfer latencies — but moves abstract
objects that carry only (class, abstract state).

Exit selection follows the paper's count-matching policy: the simulator
keeps a count per destination and picks the exit minimizing the difference
between observed and profile-predicted frequencies (optionally per object,
via developer hints). Task execution time is the profiled average for the
chosen exit; fractional expected allocation counts accumulate so long runs
emit the right totals.

The simulated execution also produces the trace that the critical path
analysis (§4.5.1) consumes.

Entry points
------------

* :func:`simulate` — simulate one layout once (the facade).
* :class:`SimSession` — a reusable session that shares per-program lookup
  tables across simulations and supports **delta re-simulation**: a DSA
  candidate differs from its parent by a single instance migration, so the
  session snapshots the parent's event-timeline prefix (keyed by
  ``layout_fingerprint``), tracks when each task's placement is first
  consulted, and resumes the child from the latest snapshot taken before
  the moved task's placement mattered. Replay is exact — a delta resume
  is **bit-identical** to a full simulation (test-enforced) — and the
  session falls back to a full run whenever no usable snapshot exists.
* :class:`SchedulingSimulator` / :func:`estimate_layout` — the legacy
  run-once entry points, kept as :class:`DeprecationWarning` shims.
"""

from __future__ import annotations

import heapq
import threading
import warnings
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from time import perf_counter_ns as _perf_counter_ns
from typing import Deque, Dict, List, Optional, Tuple

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.api import CompiledProgram

from ..analysis.astate import AState, guard_matches
from ..ir import costs
from ..lang.errors import ScheduleError
from ..obs import prof
from ..runtime.profiler import ProfileData

# Internal wall-clock buckets, flushed to the active profiler at the end of
# one run() (see ROADMAP item 1: "where does the simulator spend its
# time?"). With no profiler installed the per-event instrumentation is a
# single ``None`` check and the buckets never exist.
_P_SIM_QUEUE = prof.intern_phase("sim.queue")
_P_SIM_ARRIVE = prof.intern_phase("sim.arrive")
_P_SIM_DISPATCH = prof.intern_phase("sim.dispatch")
_P_SIM_MAIL = prof.intern_phase("sim.mail")
_P_SIM_FORM = prof.intern_phase("sim.form")
_C_SIM_EVENTS = prof.intern_phase("sim.events_processed")

#: one event in this many is wall-clock-timed end-to-end by the profiled
#: drain loop; counts stay exact, times are scaled at flush
_SAMPLE_EVERY = 16

_BUCKET_KEYS = {
    "queue": _P_SIM_QUEUE,
    "arrive": _P_SIM_ARRIVE,
    "dispatch": _P_SIM_DISPATCH,
    "mail": _P_SIM_MAIL,
    "form": _P_SIM_FORM,
}
from ..schedule.layout import (
    Layout,
    Router,
    common_tag_binding,
    core_speed,
    mesh_hops,
    scale_duration,
)
from ..schedule.mapping import layout_fingerprint
from ..sema import builtins


#: Nominal duration charged to simulated invocations of tasks the profile
#: never observed (see _SimEngine._dispatch).
UNPROFILED_TASK_CYCLES = 200

#: Heap event kinds (ints compare faster than strings and pickle smaller).
_EV_ARRIVE = 0
_EV_KICK = 1

_INIT = costs.RUNTIME_INIT_COST
_ENQUEUE = costs.ENQUEUE_COST
_MSG_SEND = costs.MSG_SEND_COST
_HOP = costs.HOP_COST
_MSG_WORD = costs.MSG_WORD_COST

#: Delta-session snapshot cadence (events between prefix snapshots) and
#: the bound on snapshots kept per parent (the list is thinned and the
#: interval doubled when it fills).
SNAPSHOT_INTERVAL = 1024
_SNAPSHOT_MAX = 32
#: A resume must skip at least this many events to be worth the copy.
MIN_RESUME_EVENTS = 512

#: ``first_touch`` value for tasks whose placement was never consulted.
_FT_INF = 1 << 30


@dataclass
class SimObject:
    """An abstract object: identity, class, state, optional tag key."""

    obj_id: int
    class_name: str
    state: AState
    tag_key: Optional[int] = None

    def __reduce__(self):
        # Positional pickling: smaller and faster than the __dict__ path,
        # which matters when session snapshots land in checkpoints.
        return (SimObject, (self.obj_id, self.class_name, self.state,
                            self.tag_key))


@dataclass
class QueueEntry:
    obj: SimObject
    arrived_at: int
    producer_event: Optional[int]  # trace event id that produced the object

    def __reduce__(self):
        return (QueueEntry, (self.obj, self.arrived_at, self.producer_event))


@dataclass
class TraceEvent:
    """One simulated task invocation (a node pair in the Fig. 6 graph)."""

    event_id: int
    task: str
    core: int
    start: int
    end: int
    exit_id: int
    data_ready: int
    param_objects: List[int] = field(default_factory=list)
    #: per parameter: (producer event id, transfer latency paid)
    inputs: List[Tuple[Optional[int], int]] = field(default_factory=list)
    produced: List[int] = field(default_factory=list)

    @property
    def duration(self) -> int:
        return self.end - self.start

    def __reduce__(self):
        # SimResult traces dominate the pool's IPC payloads; positional
        # pickling cuts the per-event cost vs. the default __dict__ form.
        return (TraceEvent, (self.event_id, self.task, self.core, self.start,
                             self.end, self.exit_id, self.data_ready,
                             self.param_objects, self.inputs, self.produced))


@dataclass
class SimResult:
    """Outcome of one scheduling simulation."""

    total_cycles: int
    finished: bool
    trace: List[TraceEvent]
    core_busy: Dict[int, int]
    invocations: Dict[str, int]
    #: fraction of core-time spent busy — the paper's fallback metric for
    #: profiles that do not terminate
    utilization: float
    #: the run stopped at an early cutoff: ``total_cycles`` is a *lower
    #: bound* on the true makespan, sufficient to rank the layout worse
    #: than the incumbent that set the cutoff
    pruned: bool = False

    def events_on_core(self, core: int) -> List[TraceEvent]:
        return sorted(
            (e for e in self.trace if e.core == core), key=lambda e: e.start
        )


@dataclass(frozen=True)
class DeltaMove:
    """How a candidate layout differs from an already-simulated parent.

    ``parent`` is the parent layout's fingerprint
    (:func:`repro.schedule.mapping.layout_fingerprint`, same core speeds);
    ``task`` is the one task whose instance set changed. A
    :class:`SimSession` uses this purely as a *hint*: a stale or wrong
    hint can only cost a fallback to full simulation, never change a
    result.
    """

    parent: str
    task: str


class ExitChooser:
    """Count-matching exit selection (deterministic low-discrepancy draw).

    ``policy`` selects the realization of the paper's count-matching rule:
    ``"sequence"`` (default) replays the profiled exit order, which keeps
    simulated counts exactly equal to predicted counts at every prefix;
    ``"counts"`` uses only the aggregate per-exit counts (quota matching
    with a proportional fallback) — the ablation baseline.
    """

    def __init__(
        self,
        profile: ProfileData,
        hints: Optional[Dict[str, str]] = None,
        policy: str = "sequence",
    ):
        self.profile = profile
        self.hints = hints or {}
        self.policy = policy
        self._taken: Dict[Tuple, int] = {}
        self._total: Dict[Tuple, int] = {}
        #: per-task lookups the hot path would otherwise recompute per call
        self._exit_ids: Dict[str, List[int]] = {}
        self._sequences: Dict[str, List[int]] = {}

    def _exits(self, task: str) -> List[int]:
        exits = self._exit_ids.get(task)
        if exits is None:
            exits = self.profile.exit_ids(task)
            self._exit_ids[task] = exits
        return exits

    def choose(self, task: str, obj_key: Optional[int]) -> int:
        exits = self._exits(task)
        if not exits:
            return 0
        if len(exits) == 1:
            return exits[0]
        scope: Tuple
        per_object = self.hints.get(task) == "per_object" and obj_key is not None
        if per_object:
            scope = (task, obj_key)
        else:
            scope = (task,)
        n = self._total.get(scope, 0)
        if not per_object and self.policy == "sequence":
            # Replay the profiled exit order while it lasts: this keeps the
            # simulated counts exactly equal to the counts predicted by the
            # recorded statistics at every prefix — the optimum of the
            # paper's count-matching criterion (it also reproduces periodic
            # behaviour like "every 62nd invocation ends a round").
            sequence = self._sequences.get(task)
            if sequence is None:
                sequence = self.profile.exit_sequence(task)
                self._sequences[task] = sequence
            if n < len(sequence):
                chosen = sequence[n]
                self._total[scope] = n + 1
                key = scope + (chosen,)
                self._taken[key] = self._taken.get(key, 0) + 1
                return chosen
        best_exit = exits[0]
        best_score = (float("-inf"), float("-inf"))
        for exit_id in exits:
            prob = self.profile.exit_probability(task, exit_id)
            taken = self._taken.get(scope + (exit_id,), 0)
            # Primary criterion: remaining quota against the profile's
            # absolute counts ("minimize the difference between these
            # counts and the counts predicted by the recorded statistics").
            # When every quota is spent (the simulated run is longer than
            # the profiled one), fall back to proportional matching; ties
            # resolve toward the more probable exit.
            proportional = prob * (n + 1) - taken
            if per_object:
                # Per-object counters have no meaningful absolute quota.
                score = (proportional, prob)
            else:
                quota = self.profile.exit_count(task, exit_id) - taken
                score = (quota if quota > 0 else proportional - 1e9, prob)
            if score > best_score:
                best_score = score
                best_exit = exit_id
        self._total[scope] = n + 1
        key = scope + (best_exit,)
        self._taken[key] = self._taken.get(key, 0) + 1
        return best_exit


# -- shared program tables -----------------------------------------------------


class _TaskRec:
    """Per-task lookups resolved once and shared across simulations."""

    __slots__ = ("params", "nparams", "guards", "func", "has_exits",
                 "fallback_exit")

    def __init__(self, compiled: "CompiledProgram", profile: ProfileData,
                 task: str):
        self.params = tuple(compiled.info.task_info(task).decl.params)
        self.nparams = len(self.params)
        #: per-parameter memo of guard_matches(param, state) by state
        self.guards = tuple({} for _ in self.params)
        self.func = compiled.ir_program.tasks[task]
        self.has_exits = bool(profile.exit_ids(task))
        # The profiled run never invoked this task (e.g. it lost every
        # race for its objects). Fall back to the static exit table — the
        # lowest explicit exit — so the simulated object still transitions.
        self.fallback_exit = min(
            (e for e in self.func.exits if e != 0), default=0
        )


class _ExitPlan:
    """Memoized per-(task, exit) dispatch consequences."""

    __slots__ = ("spec", "steps")

    def __init__(self, spec, nparams: int):
        self.spec = spec
        #: per parameter: {state -> (new_state, tag_mode)} where tag_mode
        #: 0 leaves tag_key alone, 1 sets it to the invocation's event id,
        #: 2 clears it (the last tag removal zeroed the count)
        self.steps = tuple({} for _ in range(nparams))


def _transition(spec, param_index: int, state: AState) -> Tuple[AState, int]:
    """Replays one exit's flag/tag actions for one parameter; memoized by
    :class:`_ExitPlan` since the outcome depends only on the input state."""
    updates = spec.flag_updates.get(param_index)
    if updates:
        state = state.with_flags(updates)
    mode = 0
    for action in spec.tag_updates.get(param_index, ()):
        if action.op == "add":
            state = state.with_tag_delta(action.tag_type, 1)
            # Tag this object with the invocation's key so it pairs (via
            # tag hashing) with objects the same invocation allocated.
            mode = 1
        else:
            state = state.with_tag_delta(action.tag_type, -1)
            if state.tag_count(action.tag_type) == 0:
                mode = 2
    return state, mode


class _ProgramTables:
    """Layout-independent lookup tables shared by every simulation of one
    (program, profile, core-speeds) context — the memo a
    :class:`SimSession` keeps warm across candidates.

    Everything memoized here is a pure function of the program and
    profile, so sharing the tables cannot change results; it only removes
    repeated lookups from the event loop's hot path.
    """

    __slots__ = ("compiled", "info", "profile", "core_speeds", "_recs",
                 "_class_size", "_durations", "_alloc_plans", "_exit_plans")

    def __init__(self, compiled: "CompiledProgram", profile: ProfileData,
                 core_speeds: Optional[Dict[int, float]] = None):
        self.compiled = compiled
        self.info = compiled.info
        self.profile = profile
        self.core_speeds = core_speeds
        self._recs: Dict[str, _TaskRec] = {}
        self._class_size: Dict[str, int] = {}
        #: (task, exit_id, core) -> scaled duration; exit -1 = unprofiled
        self._durations: Dict[Tuple[str, int, int], int] = {}
        self._alloc_plans: Dict[Tuple[str, int], tuple] = {}
        self._exit_plans: Dict[Tuple[str, int], Optional[_ExitPlan]] = {}

    def rec(self, task: str) -> _TaskRec:
        rec = self._recs.get(task)
        if rec is None:
            rec = _TaskRec(self.compiled, self.profile, task)
            self._recs[task] = rec
        return rec

    def class_size(self, class_name: str) -> int:
        size = self._class_size.get(class_name)
        if size is None:
            size = len(self.info.class_info(class_name).fields)
            self._class_size[class_name] = size
        return size

    def duration(self, task: str, exit_id: int, core: int,
                 profiled: bool) -> int:
        key = (task, exit_id, core)
        cycles = self._durations.get(key)
        if cycles is None:
            if profiled:
                base = max(1, int(round(self.profile.avg_cycles(task, exit_id))))
            else:
                base = UNPROFILED_TASK_CYCLES
            cycles = scale_duration(base, core_speed(self.core_speeds, core))
            self._durations[key] = cycles
        return cycles

    def exit_plan(self, task: str, exit_id: int,
                  rec: _TaskRec) -> Optional[_ExitPlan]:
        key = (task, exit_id)
        try:
            return self._exit_plans[key]
        except KeyError:
            spec = rec.func.exits.get(exit_id)
            plan = None if spec is None else _ExitPlan(spec, rec.nparams)
            self._exit_plans[key] = plan
            return plan

    def alloc_plan(self, task: str, exit_id: int) -> tuple:
        key = (task, exit_id)
        plan = self._alloc_plans.get(key)
        if plan is None:
            entries = []
            for site_id, avg in sorted(
                self.profile.avg_allocs(task, exit_id).items()
            ):
                site = self.compiled.ir_program.alloc_sites.get(site_id)
                if site is None:
                    continue
                flags = [f for f, v in site.flag_inits.items() if v]
                tags = {t: 1 for t in site.tag_types}
                state = AState.make(flags, tags)
                entries.append(
                    ((task, exit_id, site_id), avg, site.class_name, state,
                     bool(site.tag_types))
                )
            plan = tuple(entries)
            self._alloc_plans[key] = plan
        return plan


# -- delta-session records -----------------------------------------------------


@dataclass
class _Snapshot:
    """One copy of the engine's live state at an event-count boundary."""

    epoch: int  # monotonically increasing id within the parent's run
    processed: int  # events processed when the copy was taken
    last_time: int  # sim clock of the last processed event
    #: the deep-copied timeline state, or None for a *phantom* snapshot —
    #: a placeholder proving a resume point exists; the state is captured
    #: lazily by re-running the parent when a delta hint first wants it
    state: Optional[Dict[str, object]]


@dataclass
class _ParentRecord:
    """Everything needed to resume a child one migration away."""

    fingerprint: str
    layout: Layout
    #: task -> epoch count at its first placement consultation; missing
    #: means the placement was never consulted (any snapshot is usable)
    first_touch: Dict[str, int]
    snapshots: Tuple[_Snapshot, ...]


class SessionStore:
    """A thread-safe LRU of :class:`_ParentRecord`s.

    One instance backs a :class:`SimSession`; a
    :class:`repro.search.SimCache` owns one so session state rides along
    with the result cache into search checkpoints (but *not* into the
    serving layer's disk store — records are cheap to rebuild and
    version-fragile). Records are immutable once stored, so readers copy
    from them without holding the lock.
    """

    def __init__(self, max_parents: int = 16):
        if max_parents <= 0:
            raise ValueError("max_parents must be positive")
        self.max_parents = max_parents
        self._records: "OrderedDict[str, _ParentRecord]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, fingerprint: str) -> Optional[_ParentRecord]:
        with self._lock:
            record = self._records.get(fingerprint)
            if record is not None:
                self._records.move_to_end(fingerprint)
            return record

    def put(self, fingerprint: str, record: _ParentRecord) -> None:
        with self._lock:
            self._records[fingerprint] = record
            self._records.move_to_end(fingerprint)
            while len(self._records) > self.max_parents:
                self._records.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    # -- checkpoint support ----------------------------------------------------

    def state(self) -> Dict[str, object]:
        """A restorable snapshot (records in LRU order, by reference —
        records are immutable once stored)."""
        with self._lock:
            return {"records": list(self._records.items())}

    def restore(self, state: Dict[str, object]) -> None:
        with self._lock:
            self._records = OrderedDict(state["records"])


# -- the engine ----------------------------------------------------------------


class _SimEngine:
    """One discrete-event simulation of one layout.

    Heap events are flat 7-slot tuples ``(time, seq, kind, core, task,
    param_index, entry)`` — ``(time, seq)`` is unique, so the trailing
    payload slots never participate in heap comparisons. ``kind`` is
    :data:`_EV_ARRIVE` or :data:`_EV_KICK`; kicks carry
    ``(core, None, 0, None)``. ``_route``/``_try_form`` are instance
    attributes aliasing the implementations; the profiled drain rebinds
    them to counting wrappers for its duration, which keeps the
    "am I being profiled?" branch out of the unobserved hot path.
    """

    def __init__(
        self,
        compiled: "CompiledProgram",
        layout: Layout,
        profile: ProfileData,
        hints: Optional[Dict[str, str]] = None,
        max_events: int = 2_000_000,
        exit_policy: str = "sequence",
        core_speeds: Optional[Dict[int, float]] = None,
        cutoff: Optional[int] = None,
        tables: Optional[_ProgramTables] = None,
        observe: Optional[bool] = None,
    ):
        layout.validate(compiled.info)
        self.compiled = compiled
        self.info = compiled.info
        self.layout = layout
        self.profile = profile
        self.max_events = max_events
        self.exit_policy = exit_policy
        self.core_speeds = core_speeds
        self.cutoff = cutoff
        self._observe = observe
        self.tables = (
            tables
            if tables is not None
            else _ProgramTables(compiled, profile, core_speeds)
        )
        self.router = Router(compiled.info, layout)
        self._cores_of = self.router._cores
        self.chooser = ExitChooser(profile, hints, exit_policy)
        self._core_list = layout.cores_used()

        self._events: List[tuple] = []
        self._seq = 0
        self._next_obj_id = 0
        self._next_event_id = 0
        self.busy_until: Dict[int, int] = {
            core: _INIT for core in self._core_list
        }
        self.core_busy: Dict[int, int] = {core: 0 for core in self._core_list}
        self.ready: Dict[int, Deque[List[QueueEntry]]] = {}
        sets: Dict[Tuple[int, str], List[Deque[QueueEntry]]] = {}
        tables_rec = self.tables.rec
        for core in self._core_list:
            self.ready[core] = deque()
            for task in layout.tasks_on_core(core):
                sets[(core, task)] = [
                    deque() for _ in range(tables_rec(task).nparams)
                ]
        self._sets = sets
        self._ready_task: Dict[int, Deque[str]] = {
            core: deque() for core in self._core_list
        }
        self._rr_state: Dict[Tuple[int, str], int] = {}
        self._alloc_carry: Dict[Tuple[str, int, int], float] = {}
        self.trace: List[TraceEvent] = []
        self.invocations: Dict[str, int] = {}

        #: hot-path aliases; the profiled drain temporarily rebinds these
        #: to the counting wrappers
        self._route = self._route_impl
        self._try_form = self._try_form_impl

        #: wall-clock bucket accounting (see _drain_profiled). ``_timing``
        #: is True only inside a sampled event, where the counting
        #: wrappers also read the clock.
        self._timing = False
        self._mail_ns = 0
        self._form_ns = 0
        self._mail_n = 0
        self._form_n = 0
        self._mail_k = 0
        self._form_k = 0

        #: delta-session recording state (off unless _enable_recording)
        self._snapshots: Optional[List[_Snapshot]] = None
        self._first_touch: Optional[Dict[str, int]] = None
        self._snap_interval = 0
        self._snap_epoch = 0
        self._snap_capture = True
        self._snap_next = -1  # next `processed` count to snapshot at
        self._resumed = False
        self._resume_processed = 0
        self._resume_last_time = _INIT

    # -- delta-session recording -----------------------------------------------

    def _enable_recording(self, interval: int, capture: bool = True) -> None:
        """Turns on delta-session recording.

        With ``capture=False`` the engine records only the cheap parts —
        the first-touch epoch map and *phantom* snapshots (epoch,
        processed-count, and clock, but no state copy). A phantom record
        is enough to decide whether a later one-move delta could resume
        profitably; the expensive state capture is deferred until a hint
        actually proves it worthwhile (:meth:`SimSession._warm_parent`).
        """
        self._snapshots = []
        if self._first_touch is None:
            self._first_touch = {}
        self._snap_capture = capture
        self._snap_interval = interval
        self._snap_next = self._resume_processed + interval - (
            self._resume_processed % interval
        )

    def _take_snapshot(self, processed: int, last_time: int) -> None:
        snaps = self._snapshots
        if len(self._first_touch) >= len(self.layout.instances):
            # Every task's placement has been consulted, so no snapshot
            # from here on could ever be resumed for a one-task move —
            # stop paying for copies.
            self._snap_next = -1
            return
        if len(snaps) >= _SNAPSHOT_MAX:
            # Thin to every other snapshot and halve the cadence; epochs
            # ride along inside the records, so first_touch comparisons
            # stay valid across thinning.
            del snaps[1::2]
            self._snap_interval *= 2
        snaps.append(
            _Snapshot(
                self._snap_epoch,
                processed,
                last_time,
                self._capture_state() if self._snap_capture else None,
            )
        )
        self._snap_epoch += 1
        self._snap_next = processed + self._snap_interval

    def _capture_state(self) -> Dict[str, object]:
        """Deep-copies the live timeline state.

        One SimObject is aliased by every QueueEntry that carries it (an
        object routed to two consumers is *shared* — a transition through
        one is visible to the other), so the copy memoizes on identity to
        preserve the aliasing graph exactly. Completed TraceEvents and
        AStates are immutable and shared by reference.
        """
        memo: Dict[int, object] = {}

        def cp(entry: QueueEntry) -> QueueEntry:
            out = memo.get(id(entry))
            if out is None:
                obj = entry.obj
                nobj = memo.get(id(obj))
                if nobj is None:
                    nobj = SimObject(obj.obj_id, obj.class_name, obj.state,
                                     obj.tag_key)
                    memo[id(obj)] = nobj
                out = QueueEntry(nobj, entry.arrived_at, entry.producer_event)
                memo[id(entry)] = out
            return out

        return {
            "events": [
                e if e[6] is None
                else (e[0], e[1], e[2], e[3], e[4], e[5], cp(e[6]))
                for e in self._events
            ],
            "sets": {
                key: [deque(cp(e) for e in dq) for dq in lst]
                for key, lst in self._sets.items()
            },
            "ready": {
                core: deque([cp(e) for e in combo] for combo in dq)
                for core, dq in self.ready.items()
            },
            "ready_task": {
                core: deque(dq) for core, dq in self._ready_task.items()
            },
            "busy_until": dict(self.busy_until),
            "core_busy": dict(self.core_busy),
            "invocations": dict(self.invocations),
            "rr_state": dict(self._rr_state),
            "alloc_carry": dict(self._alloc_carry),
            "trace": list(self.trace),
            "taken": dict(self.chooser._taken),
            "total": dict(self.chooser._total),
            "seq": self._seq,
            "next_obj_id": self._next_obj_id,
            "next_event_id": self._next_event_id,
        }

    def _restore_for_delta(self, snap: _Snapshot, moved: str) -> bool:
        """Adopts a parent snapshot as this engine's starting state.

        The caller guarantees the layouts differ only in ``moved``'s
        instance set and that the snapshot predates ``moved``'s first
        placement consultation. This method re-verifies the consequences
        (nothing in the prefix can mention the moved task, and cores the
        child no longer uses must be untouched) and returns False —
        leaving the engine unusable — when any check fails.
        """
        st = snap.state
        used = set(self._core_list)
        if moved in st["invocations"]:
            return False
        for core, value in st["busy_until"].items():
            if core not in used and value != _INIT:
                return False
        for core, value in st["core_busy"].items():
            if core not in used and value:
                return False
        for core, dq in st["ready"].items():
            if core not in used and dq:
                return False
        for tasks in st["ready_task"].values():
            if moved in tasks:
                return False
        for (core, task), lst in st["sets"].items():
            if (task == moved or core not in used) and any(lst):
                return False
        for event in st["events"]:
            if event[2] == _EV_ARRIVE and event[4] == moved:
                return False
        for origin, task in st["rr_state"]:
            if task == moved or origin not in used:
                return False
        for scope in st["total"]:
            if scope[0] == moved:
                return False

        memo: Dict[int, object] = {}

        def cp(entry: QueueEntry) -> QueueEntry:
            out = memo.get(id(entry))
            if out is None:
                obj = entry.obj
                nobj = memo.get(id(obj))
                if nobj is None:
                    nobj = SimObject(obj.obj_id, obj.class_name, obj.state,
                                     obj.tag_key)
                    memo[id(obj)] = nobj
                out = QueueEntry(nobj, entry.arrived_at, entry.producer_event)
                memo[id(entry)] = out
            return out

        # The copied heap list is a valid heap verbatim: the prefix's
        # push/pop sequence is deterministic, so a full child run would
        # have produced the identical array.
        self._events = [
            e if e[6] is None
            else (e[0], e[1], e[2], e[3], e[4], e[5], cp(e[6]))
            for e in st["events"]
        ]
        self._seq = st["seq"]
        self._next_obj_id = st["next_obj_id"]
        self._next_event_id = st["next_event_id"]
        self._rr_state = dict(st["rr_state"])
        self._alloc_carry = dict(st["alloc_carry"])
        self.invocations = dict(st["invocations"])
        self.trace = list(st["trace"])
        self.chooser._taken = dict(st["taken"])
        self.chooser._total = dict(st["total"])
        # Re-key per-core state in *this* layout's cores_used() order so
        # dict iteration (the trailing kick sweep, result dicts) matches a
        # full child run; cores new to the child start cold.
        busy = st["busy_until"]
        busyc = st["core_busy"]
        readys = st["ready"]
        rtasks = st["ready_task"]
        setsrc = st["sets"]
        self.busy_until = {
            core: busy.get(core, _INIT) for core in self._core_list
        }
        self.core_busy = {core: busyc.get(core, 0) for core in self._core_list}
        ready: Dict[int, Deque[List[QueueEntry]]] = {}
        ready_task: Dict[int, Deque[str]] = {}
        sets: Dict[Tuple[int, str], List[Deque[QueueEntry]]] = {}
        for core in self._core_list:
            dq = readys.get(core)
            ready[core] = (
                deque([cp(e) for e in combo] for combo in dq) if dq else deque()
            )
            rt = rtasks.get(core)
            ready_task[core] = deque(rt) if rt else deque()
            for task in self.layout.tasks_on_core(core):
                nparams = self.tables.rec(task).nparams
                if task == moved:
                    sets[(core, task)] = [deque() for _ in range(nparams)]
                else:
                    src = setsrc.get((core, task))
                    if src is None:  # pragma: no cover - layouts pre-checked
                        return False
                    sets[(core, task)] = [
                        deque(cp(e) for e in dq) for dq in src
                    ]
        self.ready = ready
        self._ready_task = ready_task
        self._sets = sets
        self._resumed = True
        self._resume_processed = snap.processed
        self._resume_last_time = snap.last_time
        return True

    # -- main loop ---------------------------------------------------------------

    def run(self) -> SimResult:
        profiler = None if self._observe is False else prof.active()

        if not self._resumed:
            startup = SimObject(
                self._next_obj_id,
                builtins.STARTUP_CLASS,
                AState.make([builtins.STARTUP_FLAG]),
                None,
            )
            self._next_obj_id += 1
            self._route(startup, None, _INIT, None)

        if profiler is None:
            processed, finished, pruned, last_time = self._drain()
        else:
            processed, finished, pruned, last_time = self._drain_profiled(
                profiler
            )
        self.processed = processed

        total = max([last_time] + list(self.busy_until.values()))
        busy_time = sum(self.core_busy.values())
        cores = max(1, len(self.core_busy))
        utilization = busy_time / (cores * total) if total else 0.0
        return SimResult(
            total_cycles=total,
            finished=finished,
            trace=self.trace,
            core_busy=dict(self.core_busy),
            invocations=dict(self.invocations),
            utilization=utilization,
            pruned=pruned,
        )

    def _drain(self) -> Tuple[int, bool, bool, int]:
        """The event loop, unobserved: the simulator's hot path."""
        events = self._events
        pop = heapq.heappop
        push = heapq.heappush
        cutoff = self.cutoff
        max_events = self.max_events
        sets = self._sets
        ready_task = self._ready_task
        busy_until = self.busy_until
        dispatch = self._dispatch
        try_form = self._try_form
        snap_at = self._snap_next
        processed = self._resume_processed
        finished = True
        pruned = False
        # Event times are nondecreasing (pushes never go backwards), so
        # tracking the last popped time needs no max().
        last_time = self._resume_last_time
        while events:
            processed += 1
            if processed > max_events:
                finished = False
                break
            time, _, kind, core, task, param_index, entry = pop(events)
            if cutoff is not None and time > cutoff:
                # Every remaining event is at or past this one, so the true
                # makespan exceeds the cutoff — the incumbent already wins.
                pruned = True
                last_time = time
                break
            last_time = time
            if kind:
                dispatch(core, time)
            else:
                sets[(core, task)][param_index].append(entry)
                try_form(core, task, time)
                if ready_task[core] and busy_until[core] <= time:
                    self._seq = s = self._seq + 1
                    push(events, (time, s, _EV_KICK, core, None, 0, None))
            if processed == snap_at:
                self._take_snapshot(processed, last_time)
                snap_at = self._snap_next
        return processed, finished, pruned, last_time

    def _drain_profiled(self, profiler) -> Tuple[int, bool, bool, int]:
        """The event loop with sampled per-bucket wall accounting.

        Same event-for-event behavior as :meth:`_drain` — the results
        are bit-identical either way; only wall clocks are read in
        addition. Reading the clock around every one of the millions of
        loop iterations would cost more than the work being measured
        (~150ns per ``perf_counter_ns`` here), so one event in
        :data:`_SAMPLE_EVERY` is timed end-to-end: its pop goes to the
        ``queue`` bucket, its handler to ``arrive``/``dispatch``, and —
        only inside the sampled window — the counting _route/_try_form
        wrappers time themselves into ``mail``/``form``, whose delta is
        subtracted from the handler's bucket to keep the five disjoint.
        Call *counts* are exact; at flush the sampled times are scaled
        by the per-bucket inverse sampling fraction and normalized so
        the five buckets tile the once-measured loop wall exactly.
        """
        self._route = self._route_counted
        self._try_form = self._try_form_counted
        self._mail_ns = self._form_ns = 0
        self._mail_n = self._form_n = 0
        self._mail_k = self._form_k = 0
        clock = _perf_counter_ns
        pop = heapq.heappop
        events = self._events
        cutoff = self.cutoff
        max_events = self.max_events
        snap_at = self._snap_next
        queue_ns = arrive_ns = dispatch_ns = 0
        sampled = arrive_k = dispatch_k = 0
        arrive_n = dispatch_n = 0
        countdown = 1  # sample the first event, then every Nth
        processed = self._resume_processed
        finished = True
        pruned = False
        last_time = self._resume_last_time
        loop_start = clock()
        try:
            while events:
                processed += 1
                if processed > max_events:
                    finished = False
                    break
                countdown -= 1
                if countdown:  # unsampled: _drain's body plus exact counts
                    time, _, kind, core, task, param_index, entry = pop(events)
                    if cutoff is not None and time > cutoff:
                        pruned = True
                        last_time = time
                        break
                    last_time = time
                    if kind:
                        dispatch_n += 1
                        self._dispatch(core, time)
                    else:
                        arrive_n += 1
                        self._arrive(core, task, param_index, entry, time)
                    if processed == snap_at:
                        self._take_snapshot(processed, last_time)
                        snap_at = self._snap_next
                    continue
                countdown = _SAMPLE_EVERY
                sampled += 1
                tick = clock()
                time, _, kind, core, task, param_index, entry = pop(events)
                now = clock()
                queue_ns += now - tick
                tick = now
                if cutoff is not None and time > cutoff:
                    pruned = True
                    last_time = time
                    break
                last_time = time
                self._timing = True
                nested = self._mail_ns + self._form_ns
                if kind:
                    dispatch_n += 1
                    self._dispatch(core, time)
                    now = clock()
                    dispatch_ns += (
                        now - tick - (self._mail_ns + self._form_ns - nested)
                    )
                    dispatch_k += 1
                else:
                    arrive_n += 1
                    self._arrive(core, task, param_index, entry, time)
                    now = clock()
                    arrive_ns += (
                        now - tick - (self._mail_ns + self._form_ns - nested)
                    )
                    arrive_k += 1
                self._timing = False
                if processed == snap_at:
                    self._take_snapshot(processed, last_time)
                    snap_at = self._snap_next
        finally:
            loop_ns = clock() - loop_start
            self._route = self._route_impl
            self._try_form = self._try_form_impl
            self._timing = False
            estimates = {
                "queue": queue_ns * processed // sampled if sampled else 0,
                "arrive": (
                    arrive_ns * arrive_n // arrive_k if arrive_k else 0
                ),
                "dispatch": (
                    dispatch_ns * dispatch_n // dispatch_k if dispatch_k else 0
                ),
                "mail": (
                    self._mail_ns * self._mail_n // self._mail_k
                    if self._mail_k
                    else 0
                ),
                "form": (
                    self._form_ns * self._form_n // self._form_k
                    if self._form_k
                    else 0
                ),
            }
            self._flush_buckets(
                profiler,
                loop_ns,
                estimates,
                {
                    "queue": processed - self._resume_processed,
                    "arrive": arrive_n,
                    "dispatch": dispatch_n,
                    "mail": self._mail_n,
                    "form": self._form_n,
                },
            )
        return processed, finished, pruned, last_time

    def _flush_buckets(
        self,
        profiler,
        loop_ns: int,
        estimates: Dict[str, int],
        counts: Dict[str, int],
    ) -> None:
        """Attributes the sampled bucket estimates to the active profiler.

        The estimates are normalized to sum exactly to ``loop_ns`` — the
        real in-thread wall of the drain loop — so the exclusive
        attribution stays honest: the buckets subtract from the calling
        phase's self time (``search.dispatch`` for a serial search,
        ``pipeline.run`` for a machine run) precisely the time the loop
        actually spent.
        """
        total = sum(estimates.values())
        if total <= 0 or loop_ns <= 0:
            if counts["queue"]:
                profiler.add_count(_C_SIM_EVENTS, counts["queue"])
            return
        buckets = {
            name: value * loop_ns // total for name, value in estimates.items()
        }
        largest = max(buckets, key=lambda name: buckets[name])
        buckets[largest] += loop_ns - sum(buckets.values())
        for name, key in _BUCKET_KEYS.items():
            if buckets[name]:
                profiler.add_time(
                    key, buckets[name], count=counts[name], exclusive=True
                )
        profiler.add_count(_C_SIM_EVENTS, counts["queue"])

    # -- arrivals & invocation formation -----------------------------------------

    def _arrive(
        self, core: int, task: str, param_index: int, entry: QueueEntry,
        time: int
    ) -> None:
        self._sets[(core, task)][param_index].append(entry)
        self._try_form(core, task, time)
        if self._ready_task[core] and self.busy_until[core] <= time:
            self._seq = s = self._seq + 1
            heapq.heappush(
                self._events, (time, s, _EV_KICK, core, None, 0, None)
            )

    def _try_form_counted(self, core: int, task: str, time: int) -> None:
        self._form_n += 1
        if not self._timing:
            return self._try_form_impl(core, task, time)
        tick = _perf_counter_ns()
        try:
            return self._try_form_impl(core, task, time)
        finally:
            self._form_ns += _perf_counter_ns() - tick
            self._form_k += 1

    def _try_form_impl(self, core: int, task: str, time: int) -> None:
        sets = self._sets[(core, task)]
        if len(sets) == 1:
            pending = sets[0]
            if pending:
                ready = self.ready[core]
                ready_task = self._ready_task[core]
                while pending:
                    ready.append([pending.popleft()])
                    ready_task.append(task)
            return
        params = self.tables.rec(task).params
        while all(sets):
            combo = self._pop_compatible(params, sets)
            if combo is None:
                return
            self.ready[core].append(combo)
            self._ready_task[core].append(task)

    @staticmethod
    def _pop_compatible(
        params, sets: List[Deque[QueueEntry]]
    ) -> Optional[List[QueueEntry]]:
        shared = None
        for param in params:
            bindings = {g.binding for g in param.tag_guards}
            shared = bindings if shared is None else shared & bindings
        need_tag_match = bool(shared)

        def match(combo: List[QueueEntry]) -> bool:
            if not need_tag_match:
                return True
            keys = {entry.obj.tag_key for entry in combo}
            return len(keys) == 1 and None not in keys

        def search(index: int, chosen: List[QueueEntry]):
            if index == len(sets):
                return list(chosen) if match(chosen) else None
            for entry in sets[index]:
                chosen.append(entry)
                found = search(index + 1, chosen)
                chosen.pop()
                if found is not None:
                    return found
            return None

        combo = search(0, [])
        if combo is None:
            return None
        for bucket, entry in zip(sets, combo):
            bucket.remove(entry)
        return combo

    # -- dispatch -----------------------------------------------------------------

    def _dispatch(self, core: int, time: int) -> None:
        busy_until = self.busy_until
        if busy_until[core] > time:
            return
        ready = self.ready[core]
        ready_task = self._ready_task[core]
        tables = self.tables
        combo: Optional[List[QueueEntry]] = None
        task = ""
        rec = None
        while ready:
            candidate = ready.popleft()
            candidate_task = ready_task.popleft()
            rec = tables.rec(candidate_task)
            guards = rec.guards
            params = rec.params
            stale = None
            for index in range(rec.nparams):
                state = candidate[index].obj.state
                memo = guards[index]
                ok = memo.get(state)
                if ok is None:
                    ok = guard_matches(params[index], state)
                    memo[state] = ok
                if not ok:
                    if stale is None:
                        stale = {index}
                    else:
                        stale.add(index)
            if stale is None:
                combo = candidate
                task = candidate_task
                break
            # Mirror the runtime: drop the invocation, put still-valid
            # objects back in their sets, re-route stale objects by their
            # current state.
            sets = self._sets[(core, candidate_task)]
            for index, entry in enumerate(candidate):
                if index in stale:
                    self._route(entry.obj, core, time, entry.producer_event)
                else:
                    sets[index].appendleft(entry)
            self._try_form(core, candidate_task, time)
        if combo is None:
            return

        data_ready = max(entry.arrived_at for entry in combo)
        start = time if time > busy_until[core] else busy_until[core]
        if rec.has_exits:
            exit_id = self.chooser.choose(task, combo[0].obj.obj_id)
            duration = tables.duration(task, exit_id, core, True)
        else:
            exit_id = rec.fallback_exit
            duration = tables.duration(task, -1, core, False)
        end = start + duration

        event_id = self._next_event_id
        self._next_event_id = event_id + 1
        event = TraceEvent(
            event_id,
            task,
            core,
            start,
            end,
            exit_id,
            data_ready,
            [entry.obj.obj_id for entry in combo],
            [
                (
                    entry.producer_event,
                    entry.arrived_at - start
                    if entry.arrived_at > start
                    else 0,
                )
                for entry in combo
            ],
            [],
        )
        self.trace.append(event)
        invocations = self.invocations
        invocations[task] = invocations.get(task, 0) + 1
        self.core_busy[core] += duration
        busy_until[core] = end

        # Transition parameter objects per the exit's flag/tag actions.
        route = self._route
        plan = tables.exit_plan(task, exit_id, rec)
        if plan is None:
            for entry in combo:
                route(entry.obj, core, end, event_id)
        else:
            steps = plan.steps
            spec = plan.spec
            for param_index, entry in enumerate(combo):
                obj = entry.obj
                memo = steps[param_index]
                state = obj.state
                hit = memo.get(state)
                if hit is None:
                    hit = _transition(spec, param_index, state)
                    memo[state] = hit
                new_state, tag_mode = hit
                if tag_mode:
                    obj.tag_key = event_id if tag_mode == 1 else None
                obj.state = new_state
                route(obj, core, end, event_id)

        # Allocate new objects per the profile's expectations.
        alloc_plan = tables.alloc_plan(task, exit_id)
        if alloc_plan:
            carry_map = self._alloc_carry
            produced = event.produced
            for carry_key, avg, class_name, state, has_tags in alloc_plan:
                carry = carry_map.get(carry_key, 0.0) + avg
                emit = int(carry)
                carry_map[carry_key] = carry - emit
                if emit:
                    tag_key = event_id if has_tags else None
                    next_id = self._next_obj_id
                    self._next_obj_id = next_id + emit
                    for _ in range(emit):
                        obj = SimObject(next_id, class_name, state, tag_key)
                        next_id += 1
                        produced.append(obj.obj_id)
                        route(obj, core, end, event_id)

        events = self._events
        self._seq = s = self._seq + 1
        heapq.heappush(events, (end, s, _EV_KICK, core, None, 0, None))
        ready_map = self.ready
        for other in self._core_list:
            if other != core and ready_map[other] and busy_until[other] <= end:
                self._seq = s = self._seq + 1
                heapq.heappush(events, (end, s, _EV_KICK, other, None, 0, None))

    # -- routing --------------------------------------------------------------------

    def _route_counted(
        self,
        obj: SimObject,
        sender: Optional[int],
        time: int,
        producer_event: Optional[int],
    ) -> None:
        self._mail_n += 1
        if not self._timing:
            return self._route_impl(obj, sender, time, producer_event)
        tick = _perf_counter_ns()
        try:
            return self._route_impl(obj, sender, time, producer_event)
        finally:
            self._mail_ns += _perf_counter_ns() - tick
            self._mail_k += 1

    def _route_impl(
        self,
        obj: SimObject,
        sender: Optional[int],
        time: int,
        producer_event: Optional[int],
    ) -> None:
        consumers = self.router.consumers(obj.class_name, obj.state)
        if not consumers:
            return
        first_touch = self._first_touch
        cores_of = self._cores_of
        tables = self.tables
        layout = self.layout
        rr_state = self._rr_state
        events = self._events
        for task, param_index in consumers:
            if first_touch is not None and task not in first_touch:
                # The routing decision below is the first time this task's
                # placement can influence the timeline; any snapshot taken
                # before now is reusable for a migration of this task.
                first_touch[task] = self._snap_epoch
            cores = cores_of[task]
            if len(cores) == 1:
                dest = cores[0]
            elif (
                obj.tag_key is not None
                and tables.rec(task).nparams > 1
            ):
                dest = cores[obj.tag_key % len(cores)]
            else:
                # Round-robin, staggered by sender so co-located producers
                # don't all hammer the same replica first (Router.pick_core
                # semantics, inlined).
                origin = sender if sender is not None else 0
                key = (origin, task)
                index = rr_state.get(key)
                if index is None:
                    index = (
                        cores.index(origin)
                        if origin in cores
                        else origin % len(cores)
                    )
                rr_state[key] = index + 1
                dest = cores[index % len(cores)]
            if sender is None:
                latency = 0
            elif dest == sender:
                latency = _ENQUEUE
            else:
                latency = (
                    _MSG_SEND
                    + layout.hops(sender, dest) * _HOP
                    + _MSG_WORD * tables.class_size(obj.class_name)
                    + _ENQUEUE
                )
            arrived = time + latency
            self._seq = s = self._seq + 1
            heapq.heappush(
                events,
                (
                    arrived,
                    s,
                    _EV_ARRIVE,
                    dest,
                    task,
                    param_index,
                    QueueEntry(obj, arrived, producer_event),
                ),
            )


# -- sessions -------------------------------------------------------------------


class SimSession:
    """A reusable simulation context for one (program, profile) pair.

    Sharing a session across simulations buys two things:

    * the layout-independent :class:`_ProgramTables` memos are computed
      once, and
    * **delta re-simulation**: when :meth:`simulate` is given a
      :class:`DeltaMove` hint naming an already-simulated parent layout,
      the session resumes from the latest parent snapshot taken before
      the moved task's placement was first consulted and replays only
      the downstream events. Resumed runs are bit-identical to full
      runs — the hint can change cost, never results — and the session
      falls back to a full simulation whenever no usable snapshot
      exists.

    Sessions are cheap to create and safe to use from one thread at a
    time; the backing :class:`SessionStore` may be shared across
    threads (the serving layer shares one per context cache).
    """

    def __init__(
        self,
        compiled: "CompiledProgram",
        profile: ProfileData,
        *,
        hints: Optional[Dict[str, str]] = None,
        core_speeds: Optional[Dict[int, float]] = None,
        exit_policy: str = "sequence",
        max_events: int = 2_000_000,
        delta: bool = True,
        snapshot_interval: int = SNAPSHOT_INTERVAL,
        min_resume_events: int = MIN_RESUME_EVENTS,
        store: Optional[SessionStore] = None,
    ):
        self.compiled = compiled
        self.profile = profile
        self.hints = hints
        self.core_speeds = core_speeds
        self.exit_policy = exit_policy
        self.max_events = max_events
        self.delta = delta
        self.snapshot_interval = snapshot_interval
        self.min_resume_events = min_resume_events
        self.store = store if store is not None else SessionStore()
        self.tables = _ProgramTables(compiled, profile, core_speeds)
        self.full_simulations = 0
        self.delta_attempts = 0
        self.delta_resumes = 0
        self.delta_fallbacks = 0
        self.events_skipped = 0
        self.snapshots_taken = 0
        self.parent_warmups = 0

    def fingerprint(self, layout: Layout) -> str:
        return layout_fingerprint(layout, self.core_speeds)

    def stats(self) -> Dict[str, int]:
        return {
            "full_simulations": self.full_simulations,
            "delta_attempts": self.delta_attempts,
            "delta_resumes": self.delta_resumes,
            "delta_fallbacks": self.delta_fallbacks,
            "events_skipped": self.events_skipped,
            "snapshots_taken": self.snapshots_taken,
            "parent_warmups": self.parent_warmups,
            "parents_stored": len(self.store),
        }

    def _engine(
        self,
        layout: Layout,
        cutoff: Optional[int],
        observe: Optional[bool],
    ) -> _SimEngine:
        engine = _SimEngine(
            self.compiled,
            layout,
            self.profile,
            hints=self.hints,
            max_events=self.max_events,
            exit_policy=self.exit_policy,
            core_speeds=self.core_speeds,
            cutoff=cutoff,
            tables=self.tables,
            observe=observe,
        )
        return engine

    def simulate(
        self,
        layout: Layout,
        *,
        cutoff: Optional[int] = None,
        delta: Optional[DeltaMove] = None,
        observe: Optional[bool] = None,
    ) -> SimResult:
        """Simulates ``layout``; ``delta`` is a pure cost hint."""
        fingerprint = layout_fingerprint(layout, self.core_speeds)
        if delta is not None and self.delta:
            self.delta_attempts += 1
            result = self._try_delta(delta, layout, fingerprint, cutoff,
                                     observe)
            if result is not None:
                return result
            self.delta_fallbacks += 1
        engine = self._engine(layout, cutoff, observe)
        if self.delta:
            # Record cheaply: first-touch epochs and phantom snapshots
            # only. Real state copies are deferred to _warm_parent, paid
            # exactly once per layout that a delta hint proves resumable.
            engine._enable_recording(self.snapshot_interval, capture=False)
        result = engine.run()
        self.full_simulations += 1
        self._store_record(fingerprint, layout, engine)
        return result

    def _pick_snapshot(
        self, record: _ParentRecord, moved: str, cutoff: Optional[int]
    ) -> Optional[_Snapshot]:
        """The latest parent snapshot reusable for a ``moved`` migration
        evaluated under ``cutoff`` — phantom or real — or None."""
        touch_epoch = record.first_touch.get(moved, _FT_INF)
        best: Optional[_Snapshot] = None
        for snapshot in record.snapshots:
            if snapshot.epoch >= touch_epoch:
                break
            if cutoff is not None and snapshot.last_time > cutoff:
                # The snapshot's prefix already crossed the cutoff; a
                # cutoff run would have stopped earlier, so resuming from
                # it could not reproduce the pruned result exactly.
                break
            best = snapshot
        return best

    def _warm_parent(self, record: _ParentRecord) -> Optional[_ParentRecord]:
        """Re-simulates a phantom parent with full state capture.

        The engine is deterministic, so the warm run retraces the
        original exactly — same epochs, same first touches — and merely
        fills in the states the phantom record proved worth having. One
        full-simulation cost, amortized over every child that names this
        parent (and over later iterations, while the record stays in the
        store).
        """
        engine = self._engine(record.layout, None, False)
        engine._enable_recording(self.snapshot_interval, capture=True)
        engine.run()
        self.parent_warmups += 1
        self._store_record(record.fingerprint, record.layout, engine)
        return self.store.get(record.fingerprint)

    def _try_delta(
        self,
        hint: DeltaMove,
        layout: Layout,
        fingerprint: str,
        cutoff: Optional[int],
        observe: Optional[bool],
    ) -> Optional[SimResult]:
        record = self.store.get(hint.parent)
        if record is None:
            return None
        moved = hint.task
        parent = record.layout
        if (
            parent.num_cores != layout.num_cores
            or parent.mesh_width != layout.mesh_width
            or parent.topology != layout.topology
        ):
            return None
        parent_instances = parent.instances
        child_instances = layout.instances
        if len(parent_instances) != len(child_instances):
            return None
        for (ptask, pcores), (ctask, ccores) in zip(
            parent_instances, child_instances
        ):
            if ptask != ctask:
                return None
            if pcores != ccores and ptask != moved:
                return None
        best = self._pick_snapshot(record, moved, cutoff)
        if best is None or best.processed < self.min_resume_events:
            return None
        if best.state is None:
            # Phantom record: the resume is provably worthwhile (enough
            # skippable prefix), so pay the one-time warm-up now. The
            # warm run may extend past a cutoff the original stopped at,
            # which only ever adds usable snapshots; re-pick against the
            # fresh record either way.
            record = self._warm_parent(record)
            if record is None:  # pragma: no cover - store raced/evicted
                return None
            best = self._pick_snapshot(record, moved, cutoff)
            if (
                best is None
                or best.state is None
                or best.processed < self.min_resume_events
            ):
                return None
        engine = self._engine(layout, cutoff, observe)
        # Tasks already touched in the reused prefix resume as "touched
        # before any of the child's own snapshots" (epoch 0).
        engine._first_touch = {
            task: 0
            for task, epoch in record.first_touch.items()
            if epoch <= best.epoch
        }
        if not engine._restore_for_delta(best, moved):
            return None
        # The resumed child records phantoms too — if it becomes a parent
        # worth resuming from, _warm_parent rebuilds it from scratch.
        engine._enable_recording(self.snapshot_interval, capture=False)
        result = engine.run()
        self.delta_resumes += 1
        self.events_skipped += best.processed
        self._store_record(fingerprint, layout, engine)
        return result

    def _store_record(
        self, fingerprint: str, layout: Layout, engine: _SimEngine
    ) -> None:
        snapshots = engine._snapshots
        if not snapshots:
            return
        if snapshots[0].state is None:
            existing = self.store.get(fingerprint)
            if (
                existing is not None
                and existing.snapshots
                and existing.snapshots[0].state is not None
            ):
                # Never clobber a warmed (real-state) record with a
                # phantom one — the warm-up cost is already sunk.
                return
        self.snapshots_taken += len(snapshots)
        self.store.put(
            fingerprint,
            _ParentRecord(
                fingerprint=fingerprint,
                layout=layout,
                first_touch=engine._first_touch,
                snapshots=tuple(snapshots),
            ),
        )


# -- facade & legacy shims ------------------------------------------------------


def simulate(
    compiled: "CompiledProgram",
    layout: Layout,
    profile: Optional[ProfileData] = None,
    *,
    hints: Optional[Dict[str, str]] = None,
    core_speeds: Optional[Dict[int, float]] = None,
    exit_policy: str = "sequence",
    max_events: int = 2_000_000,
    cutoff: Optional[int] = None,
    observe: Optional[bool] = None,
    session: Optional[SimSession] = None,
    delta: Optional[DeltaMove] = None,
) -> SimResult:
    """Simulate one layout and return its :class:`SimResult`.

    The one entry point for scheduling simulation. With ``session``
    (a :class:`SimSession`), per-program tables are shared across calls
    and ``delta`` hints enable incremental re-simulation; the per-call
    keyword knobs (``hints``/``core_speeds``/``exit_policy``/
    ``max_events``) then live on the session and must not be repeated
    here. ``observe`` controls profiler attachment: ``None`` (auto)
    attaches to the active :mod:`repro.obs.prof` profiler if one is
    installed, ``False`` forces the unobserved fast drain.
    """
    if session is not None:
        if profile is not None and profile is not session.profile:
            raise ScheduleError(
                "simulate(): pass profile via the session, not per call"
            )
        if hints is not None or core_speeds is not None:
            raise ScheduleError(
                "simulate(): hints/core_speeds live on the session"
            )
        return session.simulate(
            layout, cutoff=cutoff, delta=delta, observe=observe
        )
    if profile is None:
        raise ScheduleError("simulate() requires a profile (or a session)")
    engine = _SimEngine(
        compiled,
        layout,
        profile,
        hints=hints,
        max_events=max_events,
        exit_policy=exit_policy,
        core_speeds=core_speeds,
        cutoff=cutoff,
        observe=observe,
    )
    return engine.run()


_REMOVAL_VERSION = "0.9"


class SchedulingSimulator:
    """Deprecated run-once wrapper around the simulation engine.

    Use :func:`simulate` (or a :class:`SimSession` for repeated
    simulations) instead. Scheduled for removal in version
    {version}; semantics are exactly the legacy ones — construct, then
    :meth:`run` once.
    """

    def __init__(
        self,
        compiled: "CompiledProgram",
        layout: Layout,
        profile: ProfileData,
        hints: Optional[Dict[str, str]] = None,
        max_events: int = 2_000_000,
        exit_policy: str = "sequence",
        core_speeds: Optional[Dict[int, float]] = None,
        cutoff: Optional[int] = None,
    ):
        warnings.warn(
            "SchedulingSimulator is deprecated and will be removed in "
            f"version {_REMOVAL_VERSION}; use repro.schedule.simulate() "
            "or SimSession instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self._engine = _SimEngine(
            compiled,
            layout,
            profile,
            hints=hints,
            max_events=max_events,
            exit_policy=exit_policy,
            core_speeds=core_speeds,
            cutoff=cutoff,
        )

    def __getattr__(self, name):
        # Legacy callers poked at simulator internals (chooser, trace,
        # ready queues); forward to the engine so they keep working for
        # the shim's deprecation window.
        return getattr(self._engine, name)

    def run(self) -> SimResult:
        return self._engine.run()


SchedulingSimulator.__doc__ = SchedulingSimulator.__doc__.format(
    version=_REMOVAL_VERSION
)


def estimate_layout(
    compiled: "CompiledProgram",
    layout: Layout,
    profile: ProfileData,
    hints: Optional[Dict[str, str]] = None,
    core_speeds: Optional[Dict[int, float]] = None,
) -> SimResult:
    """Deprecated convenience wrapper: simulate one layout once.

    Use :func:`simulate` instead; removal in version {version}.
    """
    warnings.warn(
        "estimate_layout is deprecated and will be removed in version "
        f"{_REMOVAL_VERSION}; use repro.schedule.simulate() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return simulate(
        compiled, layout, profile, hints=hints, core_speeds=core_speeds
    )


estimate_layout.__doc__ = estimate_layout.__doc__.format(
    version=_REMOVAL_VERSION
)
