"""High-level scheduling simulator (paper §4.4).

Estimates how long a candidate layout will take to execute **without running
any application code**: task durations, exit choices, and allocation counts
all come from the profile's Markov model. The simulator mirrors the real
runtime's structure — per-core parameter sets, FIFO invocation formation,
round-robin/tag-hash routing, mesh transfer latencies — but moves abstract
objects that carry only (class, abstract state).

Exit selection follows the paper's count-matching policy: the simulator
keeps a count per destination and picks the exit minimizing the difference
between observed and profile-predicted frequencies (optionally per object,
via developer hints). Task execution time is the profiled average for the
chosen exit; fractional expected allocation counts accumulate so long runs
emit the right totals.

The simulated execution also produces the trace that the critical path
analysis (§4.5.1) consumes.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter_ns as _perf_counter_ns
from typing import Deque, Dict, List, Optional, Tuple

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.api import CompiledProgram

from ..analysis.astate import AState, guard_matches
from ..ir import costs
from ..lang.errors import ScheduleError
from ..obs import prof
from ..runtime.profiler import ProfileData

# Internal wall-clock buckets, flushed to the active profiler at the end of
# one run() (see ROADMAP item 1: "where does the simulator spend its
# time?"). With no profiler installed the per-event instrumentation is a
# single ``None`` check and the buckets never exist.
_P_SIM_QUEUE = prof.intern_phase("sim.queue")
_P_SIM_ARRIVE = prof.intern_phase("sim.arrive")
_P_SIM_DISPATCH = prof.intern_phase("sim.dispatch")
_P_SIM_MAIL = prof.intern_phase("sim.mail")
_P_SIM_FORM = prof.intern_phase("sim.form")
_C_SIM_EVENTS = prof.intern_phase("sim.events_processed")

#: one event in this many is wall-clock-timed end-to-end by the profiled
#: drain loop; counts stay exact, times are scaled at flush
_SAMPLE_EVERY = 16

_BUCKET_KEYS = {
    "queue": _P_SIM_QUEUE,
    "arrive": _P_SIM_ARRIVE,
    "dispatch": _P_SIM_DISPATCH,
    "mail": _P_SIM_MAIL,
    "form": _P_SIM_FORM,
}
from ..schedule.layout import (
    Layout,
    Router,
    common_tag_binding,
    core_speed,
    mesh_hops,
    scale_duration,
)
from ..sema import builtins


#: Nominal duration charged to simulated invocations of tasks the profile
#: never observed (see SchedulingSimulator._dispatch).
UNPROFILED_TASK_CYCLES = 200


@dataclass
class SimObject:
    """An abstract object: identity, class, state, optional tag key."""

    obj_id: int
    class_name: str
    state: AState
    tag_key: Optional[int] = None


@dataclass
class QueueEntry:
    obj: SimObject
    arrived_at: int
    producer_event: Optional[int]  # trace event id that produced the object


@dataclass
class TraceEvent:
    """One simulated task invocation (a node pair in the Fig. 6 graph)."""

    event_id: int
    task: str
    core: int
    start: int
    end: int
    exit_id: int
    data_ready: int
    param_objects: List[int] = field(default_factory=list)
    #: per parameter: (producer event id, transfer latency paid)
    inputs: List[Tuple[Optional[int], int]] = field(default_factory=list)
    produced: List[int] = field(default_factory=list)

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass
class SimResult:
    """Outcome of one scheduling simulation."""

    total_cycles: int
    finished: bool
    trace: List[TraceEvent]
    core_busy: Dict[int, int]
    invocations: Dict[str, int]
    #: fraction of core-time spent busy — the paper's fallback metric for
    #: profiles that do not terminate
    utilization: float
    #: the run stopped at an early cutoff: ``total_cycles`` is a *lower
    #: bound* on the true makespan, sufficient to rank the layout worse
    #: than the incumbent that set the cutoff
    pruned: bool = False

    def events_on_core(self, core: int) -> List[TraceEvent]:
        return sorted(
            (e for e in self.trace if e.core == core), key=lambda e: e.start
        )


class ExitChooser:
    """Count-matching exit selection (deterministic low-discrepancy draw).

    ``policy`` selects the realization of the paper's count-matching rule:
    ``"sequence"`` (default) replays the profiled exit order, which keeps
    simulated counts exactly equal to predicted counts at every prefix;
    ``"counts"`` uses only the aggregate per-exit counts (quota matching
    with a proportional fallback) — the ablation baseline.
    """

    def __init__(
        self,
        profile: ProfileData,
        hints: Optional[Dict[str, str]] = None,
        policy: str = "sequence",
    ):
        self.profile = profile
        self.hints = hints or {}
        self.policy = policy
        self._taken: Dict[Tuple, int] = {}
        self._total: Dict[Tuple, int] = {}

    def choose(self, task: str, obj_key: Optional[int]) -> int:
        exits = self.profile.exit_ids(task)
        if not exits:
            return 0
        if len(exits) == 1:
            return exits[0]
        scope: Tuple
        per_object = self.hints.get(task) == "per_object" and obj_key is not None
        if per_object:
            scope = (task, obj_key)
        else:
            scope = (task,)
        n = self._total.get(scope, 0)
        if not per_object and self.policy == "sequence":
            # Replay the profiled exit order while it lasts: this keeps the
            # simulated counts exactly equal to the counts predicted by the
            # recorded statistics at every prefix — the optimum of the
            # paper's count-matching criterion (it also reproduces periodic
            # behaviour like "every 62nd invocation ends a round").
            sequence = self.profile.exit_sequence(task)
            if n < len(sequence):
                chosen = sequence[n]
                self._total[scope] = n + 1
                key = scope + (chosen,)
                self._taken[key] = self._taken.get(key, 0) + 1
                return chosen
        best_exit = exits[0]
        best_score = (float("-inf"), float("-inf"))
        for exit_id in exits:
            prob = self.profile.exit_probability(task, exit_id)
            taken = self._taken.get(scope + (exit_id,), 0)
            # Primary criterion: remaining quota against the profile's
            # absolute counts ("minimize the difference between these
            # counts and the counts predicted by the recorded statistics").
            # When every quota is spent (the simulated run is longer than
            # the profiled one), fall back to proportional matching; ties
            # resolve toward the more probable exit.
            proportional = prob * (n + 1) - taken
            if per_object:
                # Per-object counters have no meaningful absolute quota.
                score = (proportional, prob)
            else:
                quota = self.profile.exit_count(task, exit_id) - taken
                score = (quota if quota > 0 else proportional - 1e9, prob)
            if score > best_score:
                best_score = score
                best_exit = exit_id
        self._total[scope] = n + 1
        key = scope + (best_exit,)
        self._taken[key] = self._taken.get(key, 0) + 1
        return best_exit


class SchedulingSimulator:
    """Simulates one layout under a profile's Markov model."""

    def __init__(
        self,
        compiled: "CompiledProgram",
        layout: Layout,
        profile: ProfileData,
        hints: Optional[Dict[str, str]] = None,
        max_events: int = 2_000_000,
        exit_policy: str = "sequence",
        core_speeds: Optional[Dict[int, float]] = None,
        cutoff: Optional[int] = None,
    ):
        layout.validate(compiled.info)
        self.core_speeds = core_speeds
        self.compiled = compiled
        self.info = compiled.info
        self.layout = layout
        self.profile = profile
        self.router = Router(compiled.info, layout)
        self.chooser = ExitChooser(profile, hints, policy=exit_policy)
        self.max_events = max_events
        #: stop simulating once the clock passes this cycle (the incumbent
        #: best of a search): the layout is already known to lose
        self.cutoff = cutoff

        self._events: List[Tuple[int, int, str, tuple]] = []
        self._seq = 0
        self._next_obj_id = 0
        self._next_event_id = 0
        self._rr_state: Dict[Tuple[int, str], int] = {}
        self._alloc_carry: Dict[Tuple[str, int, int], float] = {}
        self.busy_until: Dict[int, int] = {
            core: costs.RUNTIME_INIT_COST for core in layout.cores_used()
        }
        self.param_sets: Dict[Tuple[int, str, int], Deque[QueueEntry]] = {}
        self.ready: Dict[int, Deque[List[QueueEntry]]] = {}
        for core in layout.cores_used():
            self.ready[core] = deque()
            for task in layout.tasks_on_core(core):
                for index in range(len(self.info.task_info(task).decl.params)):
                    self.param_sets[(core, task, index)] = deque()
        self._ready_task: Dict[int, Deque[str]] = {
            core: deque() for core in layout.cores_used()
        }
        self.trace: List[TraceEvent] = []
        self.invocations: Dict[str, int] = {}
        self.core_busy: Dict[int, int] = {c: 0 for c in layout.cores_used()}
        #: wall-clock bucket accounting (see _drain_profiled).
        #: ``_counting`` is True for the whole profiled drain (the
        #: wrapped _route/_try_form count their calls); ``_timing`` only
        #: inside a sampled event (they also read the clock). The cells
        #: must be attributes, not run()-locals, to be visible there.
        self._counting = False
        self._timing = False
        self._mail_ns = 0
        self._form_ns = 0
        self._mail_n = 0
        self._form_n = 0
        self._mail_k = 0
        self._form_k = 0

    # -- helpers ---------------------------------------------------------------

    def _push(self, time: int, kind: str, payload: tuple) -> None:
        self._seq += 1
        heapq.heappush(self._events, (time, self._seq, kind, payload))

    def _new_object(
        self, class_name: str, state: AState, tag_key: Optional[int]
    ) -> SimObject:
        obj = SimObject(
            obj_id=self._next_obj_id,
            class_name=class_name,
            state=state,
            tag_key=tag_key,
        )
        self._next_obj_id += 1
        return obj

    def _class_size(self, class_name: str) -> int:
        return len(self.info.class_info(class_name).fields)

    # -- main loop ----------------------------------------------------------------

    def run(self) -> SimResult:
        profiler = prof.active()

        startup_state = AState.make([builtins.STARTUP_FLAG])
        startup = self._new_object(builtins.STARTUP_CLASS, startup_state, None)
        self._route(startup, None, costs.RUNTIME_INIT_COST, producer_event=None)

        if profiler is None:
            processed, finished, pruned, last_time = self._drain()
        else:
            processed, finished, pruned, last_time = self._drain_profiled(
                profiler
            )

        total = max([last_time] + list(self.busy_until.values()))
        busy_time = sum(self.core_busy.values())
        cores = max(1, len(self.core_busy))
        utilization = busy_time / (cores * total) if total else 0.0
        return SimResult(
            total_cycles=total,
            finished=finished,
            trace=self.trace,
            core_busy=dict(self.core_busy),
            invocations=dict(self.invocations),
            utilization=utilization,
            pruned=pruned,
        )

    def _drain(self) -> Tuple[int, bool, bool, int]:
        """The event loop, unobserved: the simulator's hot path."""
        processed = 0
        finished = True
        pruned = False
        last_time = costs.RUNTIME_INIT_COST
        while self._events:
            processed += 1
            if processed > self.max_events:
                finished = False
                break
            time, _, kind, payload = heapq.heappop(self._events)
            if self.cutoff is not None and time > self.cutoff:
                # Every remaining event is at or past this one, so the true
                # makespan exceeds the cutoff — the incumbent already wins.
                pruned = True
                last_time = max(last_time, time)
                break
            last_time = max(last_time, time)
            if kind == "arrive":
                core, task, param_index, entry = payload
                self._arrive(core, task, param_index, entry, time)
            elif kind == "kick":
                (core,) = payload
                self._dispatch(core, time)
            else:  # pragma: no cover
                raise ScheduleError(f"unknown sim event {kind}")
        return processed, finished, pruned, last_time

    def _drain_profiled(self, profiler) -> Tuple[int, bool, bool, int]:
        """The event loop with sampled per-bucket wall accounting.

        Same event-for-event behavior as :meth:`_drain` — the results
        are bit-identical either way; only wall clocks are read in
        addition. Reading the clock around every one of the millions of
        loop iterations would cost more than the work being measured
        (~150ns per ``perf_counter_ns`` here), so one event in
        :data:`_SAMPLE_EVERY` is timed end-to-end: its pop goes to the
        ``queue`` bucket, its handler to ``arrive``/``dispatch``, and —
        only inside the sampled window — the wrapped _route/_try_form
        time themselves into ``mail``/``form``, whose delta is
        subtracted from the handler's bucket to keep the five disjoint.
        Call *counts* are exact; at flush the sampled times are scaled
        by the per-bucket inverse sampling fraction and normalized so
        the five buckets tile the once-measured loop wall exactly.
        """
        self._counting = True
        self._mail_ns = self._form_ns = 0
        self._mail_n = self._form_n = 0
        self._mail_k = self._form_k = 0
        clock = _perf_counter_ns
        pop = heapq.heappop
        events = self._events
        cutoff = self.cutoff
        max_events = self.max_events
        queue_ns = arrive_ns = dispatch_ns = 0
        sampled = arrive_k = dispatch_k = 0
        arrive_n = dispatch_n = 0
        countdown = 1  # sample the first event, then every Nth
        processed = 0
        finished = True
        pruned = False
        last_time = costs.RUNTIME_INIT_COST
        loop_start = clock()
        try:
            while events:
                processed += 1
                if processed > max_events:
                    finished = False
                    break
                countdown -= 1
                if countdown:  # unsampled: _drain's body plus exact counts
                    time, _, kind, payload = pop(events)
                    if cutoff is not None and time > cutoff:
                        pruned = True
                        last_time = max(last_time, time)
                        break
                    last_time = max(last_time, time)
                    if kind == "arrive":
                        arrive_n += 1
                        core, task, param_index, entry = payload
                        self._arrive(core, task, param_index, entry, time)
                    elif kind == "kick":
                        dispatch_n += 1
                        (core,) = payload
                        self._dispatch(core, time)
                    else:  # pragma: no cover
                        raise ScheduleError(f"unknown sim event {kind}")
                    continue
                countdown = _SAMPLE_EVERY
                sampled += 1
                tick = clock()
                time, _, kind, payload = pop(events)
                now = clock()
                queue_ns += now - tick
                tick = now
                if cutoff is not None and time > cutoff:
                    pruned = True
                    last_time = max(last_time, time)
                    break
                last_time = max(last_time, time)
                self._timing = True
                nested = self._mail_ns + self._form_ns
                if kind == "arrive":
                    arrive_n += 1
                    core, task, param_index, entry = payload
                    self._arrive(core, task, param_index, entry, time)
                    now = clock()
                    arrive_ns += (
                        now - tick - (self._mail_ns + self._form_ns - nested)
                    )
                    arrive_k += 1
                elif kind == "kick":
                    dispatch_n += 1
                    (core,) = payload
                    self._dispatch(core, time)
                    now = clock()
                    dispatch_ns += (
                        now - tick - (self._mail_ns + self._form_ns - nested)
                    )
                    dispatch_k += 1
                else:  # pragma: no cover
                    raise ScheduleError(f"unknown sim event {kind}")
                self._timing = False
        finally:
            loop_ns = clock() - loop_start
            self._counting = False
            self._timing = False
            estimates = {
                "queue": queue_ns * processed // sampled if sampled else 0,
                "arrive": (
                    arrive_ns * arrive_n // arrive_k if arrive_k else 0
                ),
                "dispatch": (
                    dispatch_ns * dispatch_n // dispatch_k if dispatch_k else 0
                ),
                "mail": (
                    self._mail_ns * self._mail_n // self._mail_k
                    if self._mail_k
                    else 0
                ),
                "form": (
                    self._form_ns * self._form_n // self._form_k
                    if self._form_k
                    else 0
                ),
            }
            self._flush_buckets(
                profiler,
                loop_ns,
                estimates,
                {
                    "queue": processed,
                    "arrive": arrive_n,
                    "dispatch": dispatch_n,
                    "mail": self._mail_n,
                    "form": self._form_n,
                },
            )
        return processed, finished, pruned, last_time

    def _flush_buckets(
        self,
        profiler,
        loop_ns: int,
        estimates: Dict[str, int],
        counts: Dict[str, int],
    ) -> None:
        """Attributes the sampled bucket estimates to the active profiler.

        The estimates are normalized to sum exactly to ``loop_ns`` — the
        real in-thread wall of the drain loop — so the exclusive
        attribution stays honest: the buckets subtract from the calling
        phase's self time (``search.dispatch`` for a serial search,
        ``pipeline.run`` for a machine run) precisely the time the loop
        actually spent.
        """
        total = sum(estimates.values())
        if total <= 0 or loop_ns <= 0:
            if counts["queue"]:
                profiler.add_count(_C_SIM_EVENTS, counts["queue"])
            return
        buckets = {
            name: value * loop_ns // total for name, value in estimates.items()
        }
        largest = max(buckets, key=lambda name: buckets[name])
        buckets[largest] += loop_ns - sum(buckets.values())
        for name, key in _BUCKET_KEYS.items():
            if buckets[name]:
                profiler.add_time(
                    key, buckets[name], count=counts[name], exclusive=True
                )
        profiler.add_count(_C_SIM_EVENTS, counts["queue"])

    # -- arrivals & invocation formation -----------------------------------------

    def _arrive(
        self, core: int, task: str, param_index: int, entry: QueueEntry, time: int
    ) -> None:
        self.param_sets[(core, task, param_index)].append(entry)
        self._try_form(core, task, time)
        if self._ready_task[core] and self.busy_until[core] <= time:
            self._push(time, "kick", (core,))

    def _try_form(self, core: int, task: str, time: int) -> None:
        if not self._counting:
            return self._try_form_impl(core, task, time)
        self._form_n += 1
        if not self._timing:
            return self._try_form_impl(core, task, time)
        tick = _perf_counter_ns()
        try:
            return self._try_form_impl(core, task, time)
        finally:
            self._form_ns += _perf_counter_ns() - tick
            self._form_k += 1

    def _try_form_impl(self, core: int, task: str, time: int) -> None:
        params = self.info.task_info(task).decl.params
        sets = [
            self.param_sets[(core, task, index)] for index in range(len(params))
        ]
        while all(sets):
            if len(params) == 1:
                combo: Optional[List[QueueEntry]] = [sets[0].popleft()]
            else:
                combo = self._pop_compatible(params, sets)
            if combo is None:
                return
            self.ready[core].append(combo)
            self._ready_task[core].append(task)

    @staticmethod
    def _pop_compatible(
        params, sets: List[Deque[QueueEntry]]
    ) -> Optional[List[QueueEntry]]:
        shared = None
        for param in params:
            bindings = {g.binding for g in param.tag_guards}
            shared = bindings if shared is None else shared & bindings
        need_tag_match = bool(shared)

        def match(combo: List[QueueEntry]) -> bool:
            if not need_tag_match:
                return True
            keys = {entry.obj.tag_key for entry in combo}
            return len(keys) == 1 and None not in keys

        def search(index: int, chosen: List[QueueEntry]):
            if index == len(sets):
                return list(chosen) if match(chosen) else None
            for entry in sets[index]:
                chosen.append(entry)
                found = search(index + 1, chosen)
                chosen.pop()
                if found is not None:
                    return found
            return None

        combo = search(0, [])
        if combo is None:
            return None
        for bucket, entry in zip(sets, combo):
            bucket.remove(entry)
        return combo

    # -- dispatch -----------------------------------------------------------------

    def _dispatch(self, core: int, time: int) -> None:
        if self.busy_until[core] > time:
            return
        combo: Optional[List[QueueEntry]] = None
        task = ""
        while self.ready[core]:
            candidate = self.ready[core].popleft()
            candidate_task = self._ready_task[core].popleft()
            params = self.info.task_info(candidate_task).decl.params
            stale = [
                (index, entry)
                for index, (param, entry) in enumerate(zip(params, candidate))
                if not guard_matches(param, entry.obj.state)
            ]
            if not stale:
                combo = candidate
                task = candidate_task
                break
            # Mirror the runtime: drop the invocation, put still-valid
            # objects back in their sets, re-route stale objects by their
            # current state.
            stale_indices = {index for index, _ in stale}
            for index, entry in enumerate(candidate):
                if index in stale_indices:
                    self._route(
                        entry.obj, core, time, producer_event=entry.producer_event
                    )
                else:
                    self.param_sets[(core, candidate_task, index)].appendleft(entry)
            self._try_form(core, candidate_task, time)
        if combo is None:
            return

        data_ready = max(entry.arrived_at for entry in combo)
        start = max(time, self.busy_until[core])
        first_obj = combo[0].obj
        func = self.compiled.ir_program.tasks[task]
        if self.profile.exit_ids(task):
            exit_id = self.chooser.choose(task, first_obj.obj_id)
            duration = max(1, int(round(self.profile.avg_cycles(task, exit_id))))
        else:
            # The profiled run never invoked this task (e.g. it lost every
            # race for its objects). Fall back to the static exit table —
            # the lowest explicit exit — so the simulated object still
            # transitions, and charge a nominal duration.
            exit_id = min(
                (e for e in func.exits if e != 0), default=0
            )
            duration = UNPROFILED_TASK_CYCLES
        duration = scale_duration(duration, core_speed(self.core_speeds, core))
        end = start + duration

        event = TraceEvent(
            event_id=self._next_event_id,
            task=task,
            core=core,
            start=start,
            end=end,
            exit_id=exit_id,
            data_ready=data_ready,
            param_objects=[entry.obj.obj_id for entry in combo],
            inputs=[
                (entry.producer_event, max(0, entry.arrived_at - start))
                for entry in combo
            ],
        )
        self._next_event_id += 1
        self.trace.append(event)
        self.invocations[task] = self.invocations.get(task, 0) + 1
        self.core_busy[core] += duration
        self.busy_until[core] = end

        # Transition parameter objects per the exit's flag/tag actions.
        spec = func.exits.get(exit_id)
        for param_index, entry in enumerate(combo):
            obj = entry.obj
            if spec is not None:
                updates = spec.flag_updates.get(param_index, {})
                state = obj.state.with_flags(updates)
                for action in spec.tag_updates.get(param_index, []):
                    delta = 1 if action.op == "add" else -1
                    state = state.with_tag_delta(action.tag_type, delta)
                    if action.op == "add":
                        # Tag this object with the invocation's key so it
                        # pairs (via tag hashing) with objects the same
                        # invocation allocated.
                        obj.tag_key = event.event_id
                    elif state.tag_count(action.tag_type) == 0:
                        obj.tag_key = None
                obj.state = state
            self._route(obj, core, end, producer_event=event.event_id)

        # Allocate new objects per the profile's expectations.
        for site_id, avg in sorted(
            self.profile.avg_allocs(task, exit_id).items()
        ):
            site = self.compiled.ir_program.alloc_sites.get(site_id)
            if site is None:
                continue
            carry_key = (task, exit_id, site_id)
            carry = self._alloc_carry.get(carry_key, 0.0) + avg
            emit = int(carry)
            self._alloc_carry[carry_key] = carry - emit
            flags = [f for f, v in site.flag_inits.items() if v]
            tags = {t: 1 for t in site.tag_types}
            state = AState.make(flags, tags)
            tag_key = event.event_id if site.tag_types else None
            for _ in range(emit):
                obj = self._new_object(site.class_name, state, tag_key)
                event.produced.append(obj.obj_id)
                self._route(obj, core, end, producer_event=event.event_id)

        self._push(end, "kick", (core,))
        for other in self.ready:
            if other != core and self.ready[other] and self.busy_until[other] <= end:
                self._push(end, "kick", (other,))

    # -- routing --------------------------------------------------------------------

    def _route(
        self,
        obj: SimObject,
        sender: Optional[int],
        time: int,
        producer_event: Optional[int],
    ) -> None:
        if not self._counting:
            return self._route_impl(obj, sender, time, producer_event)
        self._mail_n += 1
        if not self._timing:
            return self._route_impl(obj, sender, time, producer_event)
        tick = _perf_counter_ns()
        try:
            return self._route_impl(obj, sender, time, producer_event)
        finally:
            self._mail_ns += _perf_counter_ns() - tick
            self._mail_k += 1

    def _route_impl(
        self,
        obj: SimObject,
        sender: Optional[int],
        time: int,
        producer_event: Optional[int],
    ) -> None:
        consumers = self.router.consumers(obj.class_name, obj.state)
        for task, param_index in consumers:
            tag_hash = None
            task_info = self.info.task_info(task)
            if (
                len(self.layout.cores_of(task)) > 1
                and len(task_info.decl.params) > 1
                and obj.tag_key is not None
            ):
                tag_hash = obj.tag_key
            origin = sender if sender is not None else 0
            dest = self.router.pick_core(task, self._rr_state, origin, tag_hash)
            if sender is None or dest == sender:
                latency = 0 if sender is None else costs.ENQUEUE_COST
            else:
                hops = self.layout.hops(sender, dest)
                latency = (
                    costs.MSG_SEND_COST
                    + hops * costs.HOP_COST
                    + costs.MSG_WORD_COST * self._class_size(obj.class_name)
                    + costs.ENQUEUE_COST
                )
            entry = QueueEntry(
                obj=obj, arrived_at=time + latency, producer_event=producer_event
            )
            self._push(time + latency, "arrive", (dest, task, param_index, entry))


def estimate_layout(
    compiled: "CompiledProgram",
    layout: Layout,
    profile: ProfileData,
    hints: Optional[Dict[str, str]] = None,
    core_speeds: Optional[Dict[int, float]] = None,
) -> SimResult:
    """Convenience wrapper: simulate one layout once."""
    return SchedulingSimulator(
        compiled, layout, profile, hints=hints, core_speeds=core_speeds
    ).run()
