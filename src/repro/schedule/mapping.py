"""Mapping core groups onto physical cores (paper §4.3.4).

A *candidate implementation* is (1) a replica count for every core group
(drawn from the rule-derived choice sets) and (2) a partition of the groups
into core *pools* — groups in the same pool time-share the same cores.
The enumerator walks partitions as restricted-growth strings, which yields
exactly the non-isomorphic mappings (core identities are interchangeable up
to mesh position); a configurable skip probability randomly prunes subsets
of the space, reproducing the paper's randomized backtracking search.

The module also provides the local layout edits (migrate / replicate /
de-replicate a task instance) that directed simulated annealing applies.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from ..lang.errors import ScheduleError
from ..sema.symbols import ProgramInfo
from .coregroup import GroupGraph
from .layout import Layout


def layout_fingerprint(
    layout: Layout, core_speeds: Optional[Mapping[int, float]] = None
) -> str:
    """A canonical fingerprint of everything the scheduling simulator can
    observe about a layout.

    Two layouts share a fingerprint **iff** they simulate identically under
    a fixed profile: the normalized task → core mapping (``Layout.make``
    sorts both tasks and per-task core lists), the machine shape
    (``num_cores``/``mesh_width``) and interconnect topology (these decide
    hop latencies), and — because heterogeneous cores break core-renaming
    symmetry — the speed of every core the layout uses. It is the key of
    the :class:`repro.search.SimCache`, so it is intentionally *exact*: no
    renaming normalization that could alias two layouts with different
    physical distances onto one entry.
    """
    parts: List[str] = [
        f"n={layout.num_cores}",
        f"w={layout.mesh_width}",
        f"t={layout.topology}",
    ]
    for task, cores in layout.instances:
        parts.append(f"{task}:{','.join(map(str, cores))}")
    if core_speeds:
        from .layout import core_speed

        speeds = [
            f"{core}@{core_speed(core_speeds, core):.6g}"
            for core in layout.cores_used()
            if core_speed(core_speeds, core) != 1.0
        ]
        if speeds:
            parts.append("speeds=" + ";".join(speeds))
    digest = hashlib.sha256("|".join(parts).encode()).hexdigest()
    return digest[:32]


@dataclass(frozen=True)
class Candidate:
    """One point in the mapping search space."""

    replicas: Tuple[int, ...]  # per group_id
    partition: Tuple[int, ...]  # restricted growth string over group ids


def candidate_to_layout(
    info: ProgramInfo,
    graph: GroupGraph,
    candidate: Candidate,
    num_cores: int,
    mesh_width: Optional[int] = None,
) -> Optional[Layout]:
    """Realizes a candidate as a concrete layout, or ``None`` if it does not
    fit on the machine."""
    num_pools = max(candidate.partition) + 1
    pool_sizes = [0] * num_pools
    for group_id, pool in enumerate(candidate.partition):
        pool_sizes[pool] = max(pool_sizes[pool], candidate.replicas[group_id])
    if sum(pool_sizes) > num_cores:
        return None
    pool_start = [0] * num_pools
    offset = 0
    for pool in range(num_pools):
        pool_start[pool] = offset
        offset += pool_sizes[pool]
    from .coregroup import task_is_replicable

    mapping: Dict[str, List[int]] = {}
    for group in graph.groups:
        pool = candidate.partition[group.group_id]
        start = pool_start[pool]
        count = candidate.replicas[group.group_id]
        cores = [start + i for i in range(count)]
        for task in sorted(group.tasks):
            # Replicable tasks span the group's replicas; tasks the §4.3.4
            # rule pins (multi-parameter, no common tag) anchor to the
            # group's first core.
            if task_is_replicable(info, task):
                mapping[task] = cores
            else:
                mapping[task] = [start]
    layout = Layout.make(num_cores, mapping, mesh_width)
    try:
        layout.validate(info)
    except ScheduleError:
        return None
    return layout


def _partitions(count: int) -> Iterator[Tuple[int, ...]]:
    """All restricted growth strings of length ``count`` (set partitions)."""
    rgs = [0] * count

    def rec(index: int, max_label: int):
        if index == count:
            yield tuple(rgs)
            return
        for label in range(max_label + 2):
            rgs[index] = label
            yield from rec(index + 1, max(max_label, label))

    if count == 0:
        yield ()
        return
    yield from rec(1, 0)


def enumerate_candidates(
    graph: GroupGraph,
    replica_choices: Dict[int, List[int]],
    rng: Optional[random.Random] = None,
    skip_probability: float = 0.0,
) -> Iterator[Candidate]:
    """Enumerates candidates, optionally skipping random subsets.

    With ``skip_probability == 0`` the walk is exhaustive (used by the
    Figure 10 experiment); otherwise each replica-vector subtree is skipped
    with the given probability, giving a random sample of non-isomorphic
    candidates.
    """
    group_ids = [g.group_id for g in graph.groups]
    choice_lists = [replica_choices[g] for g in group_ids]

    def rec(index: int, chosen: List[int]) -> Iterator[Tuple[int, ...]]:
        if index == len(choice_lists):
            yield tuple(chosen)
            return
        for count in choice_lists[index]:
            if rng is not None and skip_probability > 0:
                if rng.random() < skip_probability:
                    continue
            chosen.append(count)
            yield from rec(index + 1, chosen)
            chosen.pop()

    for replicas in rec(0, []):
        for partition in _partitions(len(group_ids)):
            if rng is not None and skip_probability > 0:
                if rng.random() < skip_probability:
                    continue
            yield Candidate(replicas=replicas, partition=partition)


def enumerate_layouts(
    info: ProgramInfo,
    graph: GroupGraph,
    replica_choices: Dict[int, List[int]],
    num_cores: int,
    mesh_width: Optional[int] = None,
    limit: Optional[int] = None,
    rng: Optional[random.Random] = None,
    skip_probability: float = 0.0,
) -> List[Layout]:
    """Enumerates candidate layouts, deduplicated by canonical key."""
    seen = set()
    layouts: List[Layout] = []
    for candidate in enumerate_candidates(
        graph, replica_choices, rng=rng, skip_probability=skip_probability
    ):
        layout = candidate_to_layout(info, graph, candidate, num_cores, mesh_width)
        if layout is None:
            continue
        key = layout.canonical_key()
        if key in seen:
            continue
        seen.add(key)
        layouts.append(layout)
        if limit is not None and len(layouts) >= limit:
            break
    return layouts


def random_layouts(
    info: ProgramInfo,
    graph: GroupGraph,
    replica_choices: Dict[int, List[int]],
    num_cores: int,
    count: int,
    rng: random.Random,
    mesh_width: Optional[int] = None,
) -> List[Layout]:
    """Samples ``count`` distinct random candidate layouts."""
    group_ids = [g.group_id for g in graph.groups]
    seen = set()
    layouts: List[Layout] = []
    attempts = 0
    while len(layouts) < count and attempts < count * 200:
        attempts += 1
        replicas = tuple(
            rng.choice(replica_choices[g]) for g in group_ids
        )
        partition = _random_partition(len(group_ids), rng)
        layout = candidate_to_layout(
            info,
            graph,
            Candidate(replicas=replicas, partition=partition),
            num_cores,
            mesh_width,
        )
        if layout is None:
            continue
        key = layout.canonical_key()
        if key in seen:
            continue
        seen.add(key)
        layouts.append(layout)
    return layouts


def _random_partition(count: int, rng: random.Random) -> Tuple[int, ...]:
    rgs: List[int] = []
    max_label = -1
    for _ in range(count):
        label = rng.randint(0, max_label + 1)
        rgs.append(label)
        max_label = max(max_label, label)
    return tuple(rgs)


def seed_layouts(
    info: ProgramInfo,
    graph: GroupGraph,
    suggestions: Dict[int, "object"],
    num_cores: int,
    mesh_width: Optional[int] = None,
) -> List[Layout]:
    """Deterministic rule-based starting layouts.

    Realizes the transformation rules directly (before any search): the
    suggested replica counts with (a) every group in its own core pool and
    (b) all replicable groups sharing one pool with pinned groups set
    apart. Replica counts are scaled down (largest first) until the layout
    fits the machine.
    """
    counts = {gid: s.replicas for gid, s in suggestions.items()}
    layouts: List[Layout] = []
    group_ids = [g.group_id for g in graph.groups]

    def scaled(replicas: Dict[int, int], pools: Dict[int, int]) -> Optional[Layout]:
        replicas = dict(replicas)
        while True:
            sizes: Dict[int, int] = {}
            for gid in group_ids:
                pool = pools[gid]
                sizes[pool] = max(sizes.get(pool, 0), replicas[gid])
            if sum(sizes.values()) <= num_cores:
                break
            largest = max(group_ids, key=lambda g: replicas[g])
            if replicas[largest] <= 1:
                return None
            replicas[largest] -= 1
        partition = tuple(pools[gid] for gid in group_ids)
        # Normalize to a restricted-growth string.
        relabel: Dict[int, int] = {}
        rgs = []
        for label in partition:
            if label not in relabel:
                relabel[label] = len(relabel)
            rgs.append(relabel[label])
        return candidate_to_layout(
            info,
            graph,
            Candidate(
                replicas=tuple(replicas[gid] for gid in group_ids),
                partition=tuple(rgs),
            ),
            num_cores,
            mesh_width,
        )

    # (a) each group in its own pool
    separate = scaled(counts, {gid: gid for gid in group_ids})
    if separate is not None:
        layouts.append(separate)
    # (b) replicable groups share one pool; pinned groups get their own
    pools: Dict[int, int] = {}
    next_pool = 1
    for group in graph.groups:
        if group.replicable and counts[group.group_id] > 1:
            pools[group.group_id] = 0
        else:
            pools[group.group_id] = next_pool
            next_pool += 1
    pooled = scaled(counts, pools)
    if pooled is not None:
        layouts.append(pooled)
    # (c) everything in one pool (maximal locality)
    one_pool = scaled(counts, {gid: 0 for gid in group_ids})
    if one_pool is not None:
        layouts.append(one_pool)
    # Deduplicate.
    seen = set()
    unique: List[Layout] = []
    for layout in layouts:
        key = layout.canonical_key()
        if key not in seen:
            seen.add(key)
            unique.append(layout)
    return unique


# ---------------------------------------------------------------------------
# Local layout edits for directed simulated annealing (§4.5.2)
# ---------------------------------------------------------------------------


def with_instance_moved(
    layout: Layout, task: str, from_core: int, to_core: int
) -> Layout:
    """Migrates one instance of ``task`` from one core to another."""
    mapping = {t: list(cores) for t, cores in layout.as_dict().items()}
    cores = mapping[task]
    if from_core not in cores:
        raise ScheduleError(f"task '{task}' has no instance on core {from_core}")
    cores.remove(from_core)
    if to_core not in cores:
        cores.append(to_core)
    return Layout.make(
        layout.num_cores, mapping, layout.mesh_width, layout.topology
    )


def with_core_failed(
    layout: Layout, dead_core: int, survivors: Optional[List[int]] = None
) -> Layout:
    """Evicts a core from a layout: every task instance on ``dead_core``
    moves to the nearest surviving core (ties break toward the lowest core
    id, so the result is deterministic).

    This is the degraded-mode counterpart of the DSA edits above — the
    fault-recovery engine applies it when a core crashes, and
    :meth:`repro.core.adaptive.AdaptiveExecutable.degrade` uses it to keep
    an executable running on a partially failed processor until the next
    field re-optimization (§7).
    """
    if survivors is None:
        survivors = [c for c in layout.cores_used() if c != dead_core]
    survivors = [c for c in survivors if c != dead_core]
    if not survivors:
        raise ScheduleError(f"no surviving cores to absorb core {dead_core}")
    result = layout
    target = min(survivors, key=lambda c: (layout.hops(dead_core, c), c))
    for task in layout.tasks():
        if dead_core in result.cores_of(task):
            result = with_instance_moved(result, task, dead_core, target)
    return result


def with_instance_added(layout: Layout, task: str, core: int) -> Layout:
    mapping = {t: list(cores) for t, cores in layout.as_dict().items()}
    if core not in mapping[task]:
        mapping[task].append(core)
    return Layout.make(
        layout.num_cores, mapping, layout.mesh_width, layout.topology
    )


def with_instance_removed(layout: Layout, task: str, core: int) -> Layout:
    mapping = {t: list(cores) for t, cores in layout.as_dict().items()}
    if core in mapping[task] and len(mapping[task]) > 1:
        mapping[task].remove(core)
    return Layout.make(
        layout.num_cores, mapping, layout.mesh_width, layout.topology
    )
