"""Implementation synthesis: layouts, transformations, mapping search,
scheduling simulation, critical paths, and directed simulated annealing."""

from .anneal import AnnealConfig, AnnealResult, directed_simulated_annealing
from .coregroup import CoreGroup, GroupGraph, build_group_graph, build_task_edges
from .critpath import CriticalPath, Move, compute_critical_path, suggest_moves
from .layout import Layout, Router, common_tag_binding, mesh_hops
from .mapping import (
    Candidate,
    candidate_to_layout,
    enumerate_candidates,
    enumerate_layouts,
    random_layouts,
    with_instance_added,
    with_instance_moved,
    with_instance_removed,
)
from .preprocess import GroupTree, build_group_tree, duplication_factors
from .rules import ReplicaSuggestion, replica_choice_sets, suggest_replicas
from .simulator import (
    DeltaMove,
    ExitChooser,
    SchedulingSimulator,
    SessionStore,
    SimResult,
    SimSession,
    TraceEvent,
    estimate_layout,
    simulate,
)

__all__ = [
    "AnnealConfig",
    "AnnealResult",
    "Candidate",
    "CoreGroup",
    "CriticalPath",
    "DeltaMove",
    "ExitChooser",
    "GroupGraph",
    "GroupTree",
    "Layout",
    "Move",
    "ReplicaSuggestion",
    "Router",
    "SchedulingSimulator",
    "SessionStore",
    "SimResult",
    "SimSession",
    "TraceEvent",
    "build_group_graph",
    "build_group_tree",
    "build_task_edges",
    "candidate_to_layout",
    "common_tag_binding",
    "compute_critical_path",
    "directed_simulated_annealing",
    "duplication_factors",
    "enumerate_candidates",
    "enumerate_layouts",
    "estimate_layout",
    "mesh_hops",
    "random_layouts",
    "replica_choice_sets",
    "simulate",
    "suggest_moves",
    "suggest_replicas",
    "with_instance_added",
    "with_instance_moved",
    "with_instance_removed",
]
