"""Control-flow-graph utilities over the IR."""

from __future__ import annotations

from typing import Dict, List, Set

from . import instructions as ir


def successors(func: ir.IRFunction) -> Dict[int, List[int]]:
    """Maps each block id to its successor block ids."""
    return {block.block_id: block.successors() for block in func.blocks}


def predecessors(func: ir.IRFunction) -> Dict[int, List[int]]:
    preds: Dict[int, List[int]] = {block.block_id: [] for block in func.blocks}
    for block in func.blocks:
        for succ in block.successors():
            preds[succ].append(block.block_id)
    return preds


def reachable_blocks(func: ir.IRFunction) -> Set[int]:
    """Block ids reachable from the entry block."""
    seen: Set[int] = set()
    stack = [func.entry]
    while stack:
        block_id = stack.pop()
        if block_id in seen:
            continue
        seen.add(block_id)
        stack.extend(func.block(block_id).successors())
    return seen


def reachable_exits(func: ir.IRFunction) -> Set[int]:
    """Exit ids of task exit points that are reachable from the entry."""
    out: Set[int] = set()
    for block_id in reachable_blocks(func):
        term = func.block(block_id).terminator
        if isinstance(term, ir.Exit):
            out.add(term.exit_id)
    return out


def topological_order(func: ir.IRFunction) -> List[int]:
    """Reverse-postorder over reachable blocks (loops broken arbitrarily)."""
    seen: Set[int] = set()
    order: List[int] = []

    def visit(block_id: int) -> None:
        if block_id in seen:
            return
        seen.add(block_id)
        for succ in func.block(block_id).successors():
            visit(succ)
        order.append(block_id)

    visit(func.entry)
    order.reverse()
    return order
