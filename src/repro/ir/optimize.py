"""IR optimization passes.

Classic scalar cleanups over the register IR, applied per function until a
fixpoint: constant folding (with branch folding), block-local copy
propagation, flow-insensitive dead-code elimination, jump threading, and
unreachable-block compaction. Exception-preserving: operations that can
fault at runtime (division by zero) are never folded away or deleted.

The optimizer is opt-in (``compile_program(..., optimize=True)`` or
``python -m repro run -O``): the recorded experiment numbers in
EXPERIMENTS.md were measured with the straight translation, mirroring the
paper's unoptimized per-task code generation.
"""

from __future__ import annotations

import math
from typing import Dict, List, Set

from ..lang.errors import RuntimeBambooError
from . import instructions as ir
from .verify import verify_function


def _fold_binop(op: str, kind: str, left, right):
    """Evaluates a constant binary operation; returns None when the fold is
    unsafe (faulting or semantics-changing)."""
    try:
        if kind == "int":
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op in ("/", "%"):
                if right == 0:
                    return None  # preserve the runtime fault
                quotient = abs(left) // abs(right)
                if (left < 0) != (right < 0):
                    quotient = -quotient
                return quotient if op == "/" else left - right * quotient
        elif kind == "float":
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                if right == 0.0:
                    return None
                return left / right
        if op == "<":
            return left < right
        if op == ">":
            return left > right
        if op == "<=":
            return left <= right
        if op == ">=":
            return left >= right
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op == "concat" and isinstance(left, str) and isinstance(right, str):
            return left + right
    except TypeError:
        return None
    return None


def _fold_unop(op: str, kind: str, value):
    if op == "neg":
        return -value
    if op == "not":
        return not value
    if op == "i2f":
        return float(value)
    if op == "f2i":
        return math.trunc(value)
    if op == "tostr":
        if kind == "bool":
            return "true" if value else "false"
        if kind == "float":
            return repr(float(value))
        return str(value)
    return None


class FunctionOptimizer:
    """Optimizes one IR function in place."""

    def __init__(self, func: ir.IRFunction):
        self.func = func
        self.stats: Dict[str, int] = {
            "folded": 0,
            "copies": 0,
            "dead": 0,
            "threaded": 0,
            "blocks_removed": 0,
        }

    # -- constant folding + copy propagation (block-local) --------------------

    def _propagate_block(self, block: ir.BasicBlock) -> bool:
        """Forward-substitutes constants and copies within one block."""
        changed = False
        values: Dict[int, ir.Operand] = {}  # reg index -> known operand

        def resolve(operand: ir.Operand) -> ir.Operand:
            seen = set()
            while (
                isinstance(operand, ir.Reg)
                and operand.index in values
                and operand.index not in seen
            ):
                seen.add(operand.index)
                operand = values[operand.index]
            return operand

        for position, instr in enumerate(block.instructions):
            # Substitute known operands.
            replaced = self._rewrite_operands(instr, resolve)
            changed |= replaced

            if isinstance(instr, ir.Move):
                # Overwriting dst invalidates copies that referenced it.
                stale = [
                    k
                    for k, v in values.items()
                    if isinstance(v, ir.Reg) and v.index == instr.dst.index
                ]
                for k in stale:
                    del values[k]
                src = instr.src
                if isinstance(src, (ir.Const, ir.Reg)) and not (
                    isinstance(src, ir.Reg) and src.index == instr.dst.index
                ):
                    values[instr.dst.index] = src
                else:
                    values.pop(instr.dst.index, None)
                continue

            if isinstance(instr, ir.BinOp) and isinstance(
                instr.a, ir.Const
            ) and isinstance(instr.b, ir.Const):
                folded = _fold_binop(instr.op, instr.kind, instr.a.value, instr.b.value)
                if folded is not None:
                    block.instructions[position] = ir.Move(
                        instr.dst, ir.Const(folded)
                    )
                    values[instr.dst.index] = ir.Const(folded)
                    self.stats["folded"] += 1
                    changed = True
                    continue
            if isinstance(instr, ir.UnOp) and isinstance(instr.a, ir.Const):
                folded = _fold_unop(instr.op, instr.kind, instr.a.value)
                if folded is not None:
                    block.instructions[position] = ir.Move(
                        instr.dst, ir.Const(folded)
                    )
                    values[instr.dst.index] = ir.Const(folded)
                    self.stats["folded"] += 1
                    changed = True
                    continue

            # Any other destination invalidates prior knowledge of that reg.
            dest = instr.dest()
            if dest is not None:
                values.pop(dest.index, None)
                # Also invalidate copies that referenced the overwritten reg.
                stale = [
                    k
                    for k, v in values.items()
                    if isinstance(v, ir.Reg) and v.index == dest.index
                ]
                for k in stale:
                    del values[k]
        return changed

    @staticmethod
    def _rewrite_operands(instr: ir.Instr, resolve) -> bool:
        changed = False

        def sub(operand):
            nonlocal changed
            new = resolve(operand)
            if new is not operand and new != operand:
                changed = True
            return new

        if isinstance(instr, ir.Move):
            instr.src = sub(instr.src)
        elif isinstance(instr, ir.BinOp):
            instr.a = sub(instr.a)
            instr.b = sub(instr.b)
        elif isinstance(instr, ir.UnOp):
            instr.a = sub(instr.a)
        elif isinstance(instr, ir.Load):
            instr.obj = sub(instr.obj)
        elif isinstance(instr, ir.Store):
            instr.obj = sub(instr.obj)
            instr.src = sub(instr.src)
        elif isinstance(instr, ir.ALoad):
            instr.array = sub(instr.array)
            instr.index = sub(instr.index)
        elif isinstance(instr, ir.AStore):
            instr.array = sub(instr.array)
            instr.index = sub(instr.index)
            instr.src = sub(instr.src)
        elif isinstance(instr, ir.ArrLen):
            instr.array = sub(instr.array)
        elif isinstance(instr, ir.NewArr):
            instr.dims = [sub(d) for d in instr.dims]
        elif isinstance(instr, (ir.Call, ir.CallBuiltin)):
            instr.args = [sub(a) for a in instr.args]
        elif isinstance(instr, ir.BindTag):
            instr.obj = sub(instr.obj)
            instr.tag = sub(instr.tag)
        elif isinstance(instr, ir.Branch):
            instr.cond = sub(instr.cond)
        elif isinstance(instr, ir.Ret) and instr.src is not None:
            instr.src = sub(instr.src)
        return changed

    # -- branch folding ---------------------------------------------------------

    def _fold_branches(self) -> bool:
        changed = False
        for block in self.func.blocks:
            term = block.terminator
            if isinstance(term, ir.Branch) and isinstance(term.cond, ir.Const):
                target = term.true_target if term.cond.value else term.false_target
                block.instructions[-1] = ir.Jump(target)
                self.stats["folded"] += 1
                changed = True
        return changed

    # -- jump threading ----------------------------------------------------------

    def _thread_jumps(self) -> bool:
        """Redirects edges that point at empty forwarding blocks."""
        forward: Dict[int, int] = {}
        for block in self.func.blocks:
            if len(block.instructions) == 1 and isinstance(
                block.instructions[0], ir.Jump
            ):
                forward[block.block_id] = block.instructions[0].target

        def final(target: int) -> int:
            seen = set()
            while target in forward and target not in seen:
                seen.add(target)
                target = forward[target]
            return target

        changed = False
        for block in self.func.blocks:
            term = block.terminator
            if isinstance(term, ir.Jump):
                target = final(term.target)
                if target != term.target:
                    term.target = target
                    self.stats["threaded"] += 1
                    changed = True
            elif isinstance(term, ir.Branch):
                true_target = final(term.true_target)
                false_target = final(term.false_target)
                if (true_target, false_target) != (
                    term.true_target,
                    term.false_target,
                ):
                    term.true_target = true_target
                    term.false_target = false_target
                    self.stats["threaded"] += 1
                    changed = True
        entry = final(self.func.entry)
        if entry != self.func.entry:
            self.func.entry = entry
            changed = True
        return changed

    # -- dead code elimination ------------------------------------------------------

    _PURE = (ir.Move, ir.BinOp, ir.UnOp, ir.Load, ir.ALoad, ir.ArrLen)

    def _eliminate_dead(self) -> bool:
        used: Set[int] = set()
        for block in self.func.blocks:
            for instr in block.instructions:
                for operand in instr.operands():
                    if isinstance(operand, ir.Reg):
                        used.add(operand.index)
        # Registers named by taskexit tag actions stay live.
        for spec in self.func.exits.values():
            for actions in spec.tag_updates.values():
                for action in actions:
                    used.add(action.tag_reg.index)
        # Parameters are externally visible.
        used.update(range(len(self.func.param_names)))

        changed = False
        for block in self.func.blocks:
            kept: List[ir.Instr] = []
            for instr in block.instructions:
                dest = instr.dest()
                is_pure = isinstance(instr, self._PURE)
                faulting = (
                    isinstance(instr, (ir.Load, ir.ALoad, ir.ArrLen))
                    or (
                        isinstance(instr, ir.BinOp)
                        and instr.op in ("/", "%")
                    )
                )
                if (
                    is_pure
                    and not faulting
                    and dest is not None
                    and dest.index not in used
                ):
                    self.stats["dead"] += 1
                    changed = True
                    continue
                kept.append(instr)
            block.instructions = kept
        return changed

    # -- unreachable block compaction ----------------------------------------------

    def _compact(self) -> bool:
        reachable: Set[int] = set()
        stack = [self.func.entry]
        while stack:
            block_id = stack.pop()
            if block_id in reachable:
                continue
            reachable.add(block_id)
            stack.extend(self.func.blocks[block_id].successors())
        if len(reachable) == len(self.func.blocks):
            return False
        remap: Dict[int, int] = {}
        new_blocks: List[ir.BasicBlock] = []
        for block in self.func.blocks:
            if block.block_id in reachable:
                remap[block.block_id] = len(new_blocks)
                block.block_id = len(new_blocks)
                new_blocks.append(block)
        for block in new_blocks:
            term = block.terminator
            if isinstance(term, ir.Jump):
                term.target = remap[term.target]
            elif isinstance(term, ir.Branch):
                term.true_target = remap[term.true_target]
                term.false_target = remap[term.false_target]
        self.stats["blocks_removed"] += len(self.func.blocks) - len(new_blocks)
        self.func.entry = remap[self.func.entry]
        self.func.blocks = new_blocks
        return True

    # -- driver -------------------------------------------------------------------------

    def run(self, max_rounds: int = 10) -> Dict[str, int]:
        for _ in range(max_rounds):
            changed = False
            for block in self.func.blocks:
                changed |= self._propagate_block(block)
            changed |= self._fold_branches()
            changed |= self._thread_jumps()
            changed |= self._compact()
            changed |= self._eliminate_dead()
            if not changed:
                break
        problems = verify_function(self.func)
        if problems:  # pragma: no cover - optimizer invariant
            raise RuntimeBambooError(
                f"optimizer produced malformed IR: {problems}"
            )
        return self.stats


def optimize_function(func: ir.IRFunction) -> Dict[str, int]:
    """Optimizes one function in place; returns per-pass statistics."""
    return FunctionOptimizer(func).run()


def optimize_program(program: ir.IRProgram) -> Dict[str, int]:
    """Optimizes every function; returns aggregate statistics."""
    totals: Dict[str, int] = {}
    for func in list(program.methods.values()) + list(program.tasks.values()):
        for key, value in optimize_function(func).items():
            totals[key] = totals.get(key, 0) + value
    return totals
