"""Cycle cost model for the simulated many-core machine.

Plays the role of the TILEPro64 instruction timings in the paper: every IR
instruction charges a deterministic cycle cost when interpreted. The absolute
values approximate a simple in-order core (single-cycle integer ALU, slower
software-assisted floating point, memory operations a few cycles); what
matters for the reproduction is that costs are *consistent* across the
sequential baseline, the single-core Bamboo build, and the 62-core Bamboo
build, so speedups and overheads are meaningful.
"""

from __future__ import annotations

from . import instructions as ir

# Base instruction costs (cycles).
MOVE_COST = 1
JUMP_COST = 1
BRANCH_COST = 2
LOAD_COST = 3
STORE_COST = 3
ALOAD_COST = 4
ASTORE_COST = 4
ARRLEN_COST = 2
NEWOBJ_COST = 20
NEWARR_BASE_COST = 20
NEWARR_PER_ELEM_COST = 1
CALL_OVERHEAD = 10
RET_COST = 2
EXIT_COST = 2
NEWTAG_COST = 15
BINDTAG_COST = 8
TRAP_COST = 1

_INT_OP_COST = {
    "+": 1,
    "-": 1,
    "*": 3,
    "/": 25,
    "%": 25,
    "<": 1,
    ">": 1,
    "<=": 1,
    ">=": 1,
    "==": 1,
    "!=": 1,
    "&&": 1,
    "||": 1,
}

_FLOAT_OP_COST = {
    "+": 4,
    "-": 4,
    "*": 6,
    "/": 30,
    "<": 2,
    ">": 2,
    "<=": 2,
    ">=": 2,
    "==": 2,
    "!=": 2,
}

_STR_CONCAT_BASE = 12
_UNOP_COST = {
    "neg": 1,
    "not": 1,
    "i2f": 3,
    "f2i": 3,
    "tostr": 25,
}


def binop_cost(op: str, kind: str) -> int:
    if kind == "float":
        return _FLOAT_OP_COST.get(op, 4)
    if op == "concat":
        return _STR_CONCAT_BASE
    if kind in ("str", "ref"):
        return 4
    return _INT_OP_COST.get(op, 1)


def instruction_cost(instr: ir.Instr) -> int:
    """Static cost of one instruction (array allocation adds a dynamic
    per-element cost in the interpreter)."""
    if isinstance(instr, ir.Move):
        return MOVE_COST
    if isinstance(instr, ir.BinOp):
        return binop_cost(instr.op, instr.kind)
    if isinstance(instr, ir.UnOp):
        return _UNOP_COST.get(instr.op, 1)
    if isinstance(instr, ir.Load):
        return LOAD_COST
    if isinstance(instr, ir.Store):
        return STORE_COST
    if isinstance(instr, ir.ALoad):
        return ALOAD_COST
    if isinstance(instr, ir.AStore):
        return ASTORE_COST
    if isinstance(instr, ir.ArrLen):
        return ARRLEN_COST
    if isinstance(instr, ir.NewObj):
        return NEWOBJ_COST
    if isinstance(instr, ir.NewArr):
        return NEWARR_BASE_COST
    if isinstance(instr, ir.Call):
        return CALL_OVERHEAD
    if isinstance(instr, ir.CallBuiltin):
        return 0  # builtin table supplies its own cost
    if isinstance(instr, ir.NewTag):
        return NEWTAG_COST
    if isinstance(instr, ir.BindTag):
        return BINDTAG_COST
    if isinstance(instr, ir.Jump):
        return JUMP_COST
    if isinstance(instr, ir.Branch):
        return BRANCH_COST
    if isinstance(instr, ir.Ret):
        return RET_COST
    if isinstance(instr, ir.Exit):
        return EXIT_COST
    if isinstance(instr, ir.Trap):
        return TRAP_COST
    return 1


# ---------------------------------------------------------------------------
# Runtime overheads (the Bamboo runtime layered over plain code). These feed
# the machine simulator, not the interpreter: the paper's §5.5 overhead
# experiment measures exactly these costs plus flag bookkeeping.
# ---------------------------------------------------------------------------

#: Per task invocation: dequeue the invocation, check guards, set up frame.
DISPATCH_COST = 60
#: Per parameter object: acquiring/releasing its lock.
LOCK_COST = 10
#: Applying one flag update at taskexit (includes re-enqueue bookkeeping).
FLAG_UPDATE_COST = 12
#: Enqueueing a freshly created/received object into parameter sets.
ENQUEUE_COST = 16
#: Fixed cost of composing an inter-core message.
MSG_SEND_COST = 26
#: Per-hop network latency on the mesh interconnect.
HOP_COST = 6
#: Per-word (field) cost of serializing an object into a message.
MSG_WORD_COST = 2
#: One-time per-core runtime initialization.
RUNTIME_INIT_COST = 400
#: Extra cycles per array access when the optional bounds-check mode is on
#: (paper §5.5: checks are optional and were disabled for the C comparison).
BOUNDS_CHECK_COST = 2
#: Emitting one liveness heartbeat (repro.resilience); charged to the
#: emitting core only when detection-driven resilience is enabled.
HEARTBEAT_COST = 4
