"""Lowering from the type-checked AST to the register IR.

The builder consumes the annotations left by :mod:`repro.sema.typecheck`
(``.ty``, ``.resolved``, ``.call_kind`` …) so it performs no name resolution
of its own. Short-circuit boolean operators lower to control flow; numeric
promotions lower to explicit ``i2f`` conversions; string concatenation lowers
to ``tostr`` + ``concat``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..lang import ast
from ..lang.errors import LoweringError
from ..sema import builtins, types as ty
from ..sema.symbols import MethodInfo, ProgramInfo, TaskInfo
from . import instructions as ir



def _is_linkable_ref(expr_type: ty.Type) -> bool:
    """Whether values of this type can link heap regions (class instances
    and arrays; strings are immutable leaves and cannot)."""
    return isinstance(expr_type, (ty.ClassType, ty.ArrayType))


class _FunctionBuilder:
    def __init__(self, program_builder: "ProgramBuilder", name: str, kind: str):
        self.pb = program_builder
        self.func = ir.IRFunction(
            name=name, kind=kind, param_names=[], num_regs=0, blocks=[], entry=0
        )
        self.current: Optional[ir.BasicBlock] = None
        self.scopes: List[Dict[str, ir.Reg]] = [{}]
        self.loop_stack: List[Tuple[int, int]] = []  # (continue target, break target)
        self.next_exit_id = 1
        self.task_params: List[str] = []
        self.tag_types: Dict[int, str] = {}  # tag var reg index -> tag type
        self._new_block_as_current()
        self.func.entry = self.current.block_id

    # -- plumbing -----------------------------------------------------------

    def new_reg(self) -> ir.Reg:
        reg = ir.Reg(self.func.num_regs)
        self.func.num_regs += 1
        return reg

    def new_block(self) -> ir.BasicBlock:
        block = ir.BasicBlock(block_id=len(self.func.blocks))
        self.func.blocks.append(block)
        return block

    def _new_block_as_current(self) -> ir.BasicBlock:
        block = self.new_block()
        self.current = block
        return block

    def set_current(self, block: ir.BasicBlock) -> None:
        self.current = block

    def emit(self, instr: ir.Instr) -> None:
        if self.current.terminator is None:
            self.current.instructions.append(instr)
        # Unreachable code after a terminator is silently dropped.

    def terminated(self) -> bool:
        return self.current.terminator is not None

    def declare(self, name: str) -> ir.Reg:
        reg = self.new_reg()
        self.scopes[-1][name] = reg
        return reg

    def lookup(self, name: str) -> ir.Reg:
        for frame in reversed(self.scopes):
            if name in frame:
                return frame[name]
        raise LoweringError(f"unbound variable '{name}' during lowering")

    def push_scope(self):
        self.scopes.append({})

    def pop_scope(self):
        self.scopes.pop()

    # -- coercions ----------------------------------------------------------

    def coerce(self, operand: ir.Operand, src: ty.Type, dst: ty.Type) -> ir.Operand:
        if src == dst:
            return operand
        if src == ty.INT and dst == ty.FLOAT:
            out = self.new_reg()
            self.emit(ir.UnOp(out, "i2f", operand))
            return out
        if src == ty.FLOAT and dst == ty.INT:
            out = self.new_reg()
            self.emit(ir.UnOp(out, "f2i", operand))
            return out
        # Reference widening (null -> ref) needs no code.
        return operand

    def to_string(self, operand: ir.Operand, src: ty.Type) -> ir.Operand:
        if src == ty.STRING:
            return operand
        out = self.new_reg()
        kind = "float" if src == ty.FLOAT else ("bool" if src == ty.BOOL else "int")
        self.emit(ir.UnOp(out, "tostr", operand, kind=kind))
        return out

    # -- expressions ----------------------------------------------------------

    def lower_expr(self, expr: ast.Expr) -> ir.Operand:
        if isinstance(expr, ast.IntLit):
            return ir.Const(expr.value)
        if isinstance(expr, ast.FloatLit):
            return ir.Const(float(expr.value))
        if isinstance(expr, ast.BoolLit):
            return ir.Const(expr.value)
        if isinstance(expr, ast.StringLit):
            return ir.Const(expr.value)
        if isinstance(expr, ast.NullLit):
            return ir.Const(None)
        if isinstance(expr, ast.VarRef):
            return self.lookup(expr.name)
        if isinstance(expr, ast.ThisRef):
            return self.lookup("this")
        if isinstance(expr, ast.FieldAccess):
            return self._lower_field_access(expr)
        if isinstance(expr, ast.ArrayIndex):
            array = self.lower_expr(expr.array)
            index = self.lower_expr(expr.index)
            dst = self.new_reg()
            self.emit(ir.ALoad(dst, array, index, is_ref=_is_linkable_ref(expr.ty)))
            return dst
        if isinstance(expr, ast.MethodCall):
            return self._lower_call(expr)
        if isinstance(expr, ast.NewObject):
            return self._lower_new_object(expr)
        if isinstance(expr, ast.NewArray):
            dims = [self.lower_expr(d) for d in expr.dims]
            dst = self.new_reg()
            self.emit(
                ir.NewArr(dst, str(expr.elem_type.name), dims, expr.extra_dims)
            )
            return dst
        if isinstance(expr, ast.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, ast.Unary):
            operand = self.lower_expr(expr.operand)
            dst = self.new_reg()
            if expr.op == "-":
                kind = "float" if expr.ty == ty.FLOAT else "int"
                self.emit(ir.UnOp(dst, "neg", operand, kind=kind))
            else:
                self.emit(ir.UnOp(dst, "not", operand, kind="bool"))
            return dst
        if isinstance(expr, ast.Cast):
            operand = self.lower_expr(expr.operand)
            return self.coerce(operand, expr.operand.ty, expr.ty)
        raise LoweringError(f"cannot lower expression {type(expr).__name__}")

    def _lower_field_access(self, expr: ast.FieldAccess) -> ir.Operand:
        receiver = self.lower_expr(expr.receiver)
        dst = self.new_reg()
        if getattr(expr, "is_array_length", False):
            self.emit(ir.ArrLen(dst, receiver))
        else:
            field_info = expr.resolved_field
            self.emit(
                ir.Load(
                    dst,
                    receiver,
                    field_info.name,
                    field_info.index,
                    is_ref=_is_linkable_ref(field_info.type),
                )
            )
        return dst

    def _lower_call(self, expr: ast.MethodCall) -> ir.Operand:
        kind = expr.call_kind
        if kind == "builtin":
            fn: builtins.BuiltinFunction = expr.resolved
            args = []
            for arg, param_type in zip(expr.args, fn.param_types):
                operand = self.lower_expr(arg)
                args.append(self.coerce(operand, arg.ty, param_type))
            dst = self.new_reg() if fn.return_type != ty.VOID else None
            self.emit(ir.CallBuiltin(dst, fn.key, args))
            return dst if dst is not None else ir.Const(None)
        if kind == "string":
            fn = expr.resolved
            receiver = self.lower_expr(expr.receiver)
            args = [receiver]
            for arg, param_type in zip(expr.args, fn.param_types[1:]):
                operand = self.lower_expr(arg)
                args.append(self.coerce(operand, arg.ty, param_type))
            dst = self.new_reg() if fn.return_type != ty.VOID else None
            self.emit(ir.CallBuiltin(dst, fn.key, args))
            return dst if dst is not None else ir.Const(None)
        # User method.
        method: MethodInfo = expr.resolved
        if getattr(expr, "implicit_this", False) or expr.receiver is None:
            receiver: ir.Operand = self.lookup("this")
        else:
            receiver = self.lower_expr(expr.receiver)
        args = [receiver]
        for arg, param_type in zip(expr.args, method.param_types):
            operand = self.lower_expr(arg)
            args.append(self.coerce(operand, arg.ty, param_type))
        dst = self.new_reg() if method.return_type != ty.VOID else None
        self.emit(ir.Call(dst, method.qualified_name, args))
        return dst if dst is not None else ir.Const(None)

    def _lower_new_object(self, expr: ast.NewObject) -> ir.Operand:
        class_info = expr.resolved_class
        tag_regs = [self.lookup(a.tag_var) for a in expr.tag_inits]
        site = self.pb.new_alloc_site(
            class_name=class_info.name,
            flag_inits={a.flag: a.value for a in expr.flag_inits},
            tag_types=[self.tag_types.get(r.index, "?") for r in tag_regs],
            function=self.func.name,
        )
        dst = self.new_reg()
        self.emit(ir.NewObj(dst, class_info.name, site.site_id))
        for tag_reg in tag_regs:
            self.emit(ir.BindTag(dst, tag_reg))
        ctor = expr.resolved_ctor
        if ctor is not None:
            args: List[ir.Operand] = [dst]
            for arg, param_type in zip(expr.args, ctor.param_types):
                operand = self.lower_expr(arg)
                args.append(self.coerce(operand, arg.ty, param_type))
            self.emit(ir.Call(None, ctor.qualified_name, args))
        return dst

    def _lower_binary(self, expr: ast.Binary) -> ir.Operand:
        if expr.op in ("&&", "||"):
            return self._lower_short_circuit(expr)
        left_ty, right_ty = expr.left.ty, expr.right.ty
        if expr.op == "+" and expr.ty == ty.STRING:
            left = self.to_string(self.lower_expr(expr.left), left_ty)
            right = self.to_string(self.lower_expr(expr.right), right_ty)
            dst = self.new_reg()
            self.emit(ir.BinOp(dst, "concat", left, right, kind="str"))
            return dst
        left = self.lower_expr(expr.left)
        right = self.lower_expr(expr.right)
        if left_ty.is_numeric() and right_ty.is_numeric():
            operand_ty = ty.FLOAT if ty.FLOAT in (left_ty, right_ty) else ty.INT
            left = self.coerce(left, left_ty, operand_ty)
            right = self.coerce(right, right_ty, operand_ty)
            kind = "float" if operand_ty == ty.FLOAT else "int"
        elif left_ty == ty.STRING and right_ty == ty.STRING:
            kind = "str"
        else:
            kind = "ref"
        dst = self.new_reg()
        self.emit(ir.BinOp(dst, expr.op, left, right, kind=kind))
        return dst

    def _lower_short_circuit(self, expr: ast.Binary) -> ir.Operand:
        result = self.new_reg()
        left = self.lower_expr(expr.left)
        self.emit(ir.Move(result, left))
        rhs_block = self.new_block()
        join_block = self.new_block()
        if expr.op == "&&":
            self.emit(ir.Branch(result, rhs_block.block_id, join_block.block_id))
        else:
            self.emit(ir.Branch(result, join_block.block_id, rhs_block.block_id))
        self.set_current(rhs_block)
        right = self.lower_expr(expr.right)
        self.emit(ir.Move(result, right))
        self.emit(ir.Jump(join_block.block_id))
        self.set_current(join_block)
        return result

    # -- statements ------------------------------------------------------------

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.push_scope()
            for inner in stmt.statements:
                if self.terminated():
                    break
                self.lower_stmt(inner)
            self.pop_scope()
        elif isinstance(stmt, ast.VarDeclStmt):
            value: Optional[ir.Operand] = None
            if stmt.init is not None:
                value = self.lower_expr(stmt.init)
                declared = self.pb.info.resolve(stmt.var_type, stmt.location)
                value = self.coerce(value, stmt.init.ty, declared)
            reg = self.declare(stmt.name)
            if value is not None:
                self.emit(ir.Move(reg, value))
            else:
                self.emit(ir.Move(reg, ir.Const(_default_value(stmt.var_type))))
        elif isinstance(stmt, ast.TagDeclStmt):
            reg = self.declare(stmt.name)
            self.emit(ir.NewTag(reg, stmt.tag_type))
            self.tag_types[reg.index] = stmt.tag_type
        elif isinstance(stmt, ast.AssignStmt):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.IfStmt):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is None:
                self.emit(ir.Ret(None))
            else:
                value = self.lower_expr(stmt.value)
                value = self.coerce(value, stmt.value.ty, self.pb.current_return_type)
                self.emit(ir.Ret(value))
        elif isinstance(stmt, ast.BreakStmt):
            self.emit(ir.Jump(self.loop_stack[-1][1]))
        elif isinstance(stmt, ast.ContinueStmt):
            self.emit(ir.Jump(self.loop_stack[-1][0]))
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr)
        elif isinstance(stmt, ast.TaskExitStmt):
            self._lower_taskexit(stmt)
        else:
            raise LoweringError(f"cannot lower statement {type(stmt).__name__}")

    def _lower_assign(self, stmt: ast.AssignStmt) -> None:
        target = stmt.target
        if isinstance(target, ast.VarRef):
            value = self.lower_expr(stmt.value)
            value = self.coerce(value, stmt.value.ty, target.ty)
            self.emit(ir.Move(self.lookup(target.name), value))
        elif isinstance(target, ast.FieldAccess):
            receiver = self.lower_expr(target.receiver)
            value = self.lower_expr(stmt.value)
            value = self.coerce(value, stmt.value.ty, target.ty)
            field_info = target.resolved_field
            self.emit(
                ir.Store(
                    receiver,
                    field_info.name,
                    field_info.index,
                    value,
                    is_ref=_is_linkable_ref(field_info.type),
                )
            )
        elif isinstance(target, ast.ArrayIndex):
            array = self.lower_expr(target.array)
            index = self.lower_expr(target.index)
            value = self.lower_expr(stmt.value)
            value = self.coerce(value, stmt.value.ty, target.ty)
            self.emit(ir.AStore(array, index, value, is_ref=_is_linkable_ref(target.ty)))
        else:  # pragma: no cover - sema invariant
            raise LoweringError("invalid assignment target")

    def _lower_if(self, stmt: ast.IfStmt) -> None:
        cond = self.lower_expr(stmt.cond)
        then_block = self.new_block()
        else_block = self.new_block() if stmt.else_branch is not None else None
        join_block = self.new_block()
        false_target = else_block.block_id if else_block else join_block.block_id
        self.emit(ir.Branch(cond, then_block.block_id, false_target))
        self.set_current(then_block)
        self.lower_stmt(stmt.then_branch)
        self.emit(ir.Jump(join_block.block_id))
        if else_block is not None:
            self.set_current(else_block)
            self.lower_stmt(stmt.else_branch)
            self.emit(ir.Jump(join_block.block_id))
        self.set_current(join_block)

    def _lower_while(self, stmt: ast.WhileStmt) -> None:
        head = self.new_block()
        body = self.new_block()
        exit_block = self.new_block()
        self.emit(ir.Jump(head.block_id))
        self.set_current(head)
        cond = self.lower_expr(stmt.cond)
        self.emit(ir.Branch(cond, body.block_id, exit_block.block_id))
        self.set_current(body)
        self.loop_stack.append((head.block_id, exit_block.block_id))
        self.lower_stmt(stmt.body)
        self.loop_stack.pop()
        self.emit(ir.Jump(head.block_id))
        self.set_current(exit_block)

    def _lower_for(self, stmt: ast.ForStmt) -> None:
        self.push_scope()
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        head = self.new_block()
        body = self.new_block()
        update_block = self.new_block()
        exit_block = self.new_block()
        self.emit(ir.Jump(head.block_id))
        self.set_current(head)
        if stmt.cond is not None:
            cond = self.lower_expr(stmt.cond)
            self.emit(ir.Branch(cond, body.block_id, exit_block.block_id))
        else:
            self.emit(ir.Jump(body.block_id))
        self.set_current(body)
        self.loop_stack.append((update_block.block_id, exit_block.block_id))
        self.lower_stmt(stmt.body)
        self.loop_stack.pop()
        self.emit(ir.Jump(update_block.block_id))
        self.set_current(update_block)
        if stmt.update is not None:
            self.lower_stmt(stmt.update)
        self.emit(ir.Jump(head.block_id))
        self.set_current(exit_block)
        self.pop_scope()

    def _lower_taskexit(self, stmt: ast.TaskExitStmt) -> None:
        exit_id = self.next_exit_id
        self.next_exit_id += 1
        spec = ir.ExitSpec(exit_id=exit_id)
        for param_name, actions in stmt.actions:
            param_index = self.task_params.index(param_name)
            for action in actions:
                if isinstance(action, ast.FlagAction):
                    spec.flag_updates.setdefault(param_index, {})[
                        action.flag
                    ] = action.value
                else:
                    tag_reg = self.lookup(action.tag_var)
                    spec.tag_updates.setdefault(param_index, []).append(
                        ir.TagExitAction(
                            op=action.op,
                            tag_reg=tag_reg,
                            tag_type=self.tag_types.get(tag_reg.index, "?"),
                        )
                    )
        self.func.exits[exit_id] = spec
        self.emit(ir.Exit(exit_id))


def _default_value(type_node: ast.TypeNode):
    if type_node.dims:
        return None
    if type_node.name == "int":
        return 0
    if type_node.name == "float":
        return 0.0
    if type_node.name == "boolean":
        return False
    return None


class ProgramBuilder:
    """Lowers a whole type-checked program to :class:`ir.IRProgram`."""

    def __init__(self, info: ProgramInfo):
        self.info = info
        self.ir_program = ir.IRProgram()
        self._next_site_id = 0
        self.current_return_type: ty.Type = ty.VOID

    def new_alloc_site(
        self, class_name: str, flag_inits, tag_types: List[str], function: str
    ) -> ir.AllocSite:
        site = ir.AllocSite(
            site_id=self._next_site_id,
            class_name=class_name,
            flag_inits=dict(flag_inits),
            tag_types=list(tag_types),
            function=function,
        )
        self._next_site_id += 1
        self.ir_program.alloc_sites[site.site_id] = site
        return site

    def build(self) -> ir.IRProgram:
        for class_info in self.info.classes.values():
            methods = list(class_info.methods.values())
            if class_info.constructor is not None:
                methods.append(class_info.constructor)
            for method in methods:
                func = self._build_method(method)
                self.ir_program.methods[func.name] = func
        for task_info in self.info.tasks.values():
            func = self._build_task(task_info)
            self.ir_program.tasks[func.name] = func
        return self.ir_program

    def _build_method(self, method: MethodInfo) -> ir.IRFunction:
        kind = "constructor" if method.decl.is_constructor else "method"
        fb = _FunctionBuilder(self, method.qualified_name, kind)
        self.current_return_type = method.return_type
        fb.declare("this")
        fb.func.param_names.append("this")
        for param in method.decl.params:
            fb.declare(param.name)
            fb.func.param_names.append(param.name)
        fb.lower_stmt(method.decl.body)
        if not fb.terminated():
            if method.return_type == ty.VOID:
                fb.emit(ir.Ret(None))
            else:
                fb.emit(ir.Trap(f"missing return in {method.qualified_name}"))
        fb.func.return_void = method.return_type == ty.VOID
        return fb.func

    def _build_task(self, task_info: TaskInfo) -> ir.IRFunction:
        fb = _FunctionBuilder(self, task_info.name, "task")
        self.current_return_type = ty.VOID
        for param in task_info.decl.params:
            fb.declare(param.name)
            fb.func.param_names.append(param.name)
            fb.task_params.append(param.name)
        fb.lower_stmt(task_info.decl.body)
        if not fb.terminated():
            # Implicit exit point 0: leave the task without changing state.
            fb.func.exits.setdefault(0, ir.ExitSpec(exit_id=0))
            fb.emit(ir.Exit(0))
        return fb.func


def lower_program(info: ProgramInfo) -> ir.IRProgram:
    """Lowers a type-checked program to IR."""
    return ProgramBuilder(info).build()
