"""Register-based intermediate representation for Bamboo bodies.

Each task, method, and constructor lowers to an :class:`IRFunction`: a list
of basic blocks over an infinite register file. The IR is the single
representation shared by the interpreter (with the cycle cost model), the
disjointness analysis, and the dependence analysis (via the per-task exit
table and allocation-site table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union


@dataclass(frozen=True)
class Reg:
    """A virtual register."""

    index: int

    def __repr__(self) -> str:
        return f"r{self.index}"


@dataclass(frozen=True)
class Const:
    """An immediate operand (int, float, bool, str, or None for null)."""

    value: object

    def __repr__(self) -> str:
        return f"#{self.value!r}"


Operand = Union[Reg, Const]


class Instr:
    """Base class for IR instructions."""

    def operands(self) -> List[Operand]:
        return []

    def dest(self) -> Optional[Reg]:
        return None


@dataclass
class Move(Instr):
    dst: Reg
    src: Operand

    def operands(self):
        return [self.src]

    def dest(self):
        return self.dst

    def __repr__(self):
        return f"{self.dst} = {self.src}"


@dataclass
class BinOp(Instr):
    """``dst = a op b``.

    ``op`` is one of the arithmetic/comparison operators plus:
    ``concat`` (string concatenation), using already-stringified operands.
    ``kind`` records the operand domain (``int``/``float``/``str``/``ref``)
    for cost accounting and semantics (e.g. int vs float division).
    """

    dst: Reg
    op: str
    a: Operand
    b: Operand
    kind: str = "int"

    def operands(self):
        return [self.a, self.b]

    def dest(self):
        return self.dst

    def __repr__(self):
        return f"{self.dst} = {self.a} {self.op}.{self.kind} {self.b}"


@dataclass
class UnOp(Instr):
    """``dst = op a``; op in {neg, not, i2f, f2i, tostr}."""

    dst: Reg
    op: str
    a: Operand
    kind: str = "int"

    def operands(self):
        return [self.a]

    def dest(self):
        return self.dst

    def __repr__(self):
        return f"{self.dst} = {self.op}.{self.kind} {self.a}"


@dataclass
class Load(Instr):
    """``dst = obj.field``. ``is_ref`` marks reference-typed results (used
    by the disjointness analysis)."""

    dst: Reg
    obj: Operand
    field_name: str
    field_index: int
    is_ref: bool = True

    def operands(self):
        return [self.obj]

    def dest(self):
        return self.dst

    def __repr__(self):
        return f"{self.dst} = {self.obj}.{self.field_name}"


@dataclass
class Store(Instr):
    """``obj.field = src``. ``is_ref`` marks reference-typed values."""

    obj: Operand
    field_name: str
    field_index: int
    src: Operand
    is_ref: bool = True

    def operands(self):
        return [self.obj, self.src]

    def __repr__(self):
        return f"{self.obj}.{self.field_name} = {self.src}"


@dataclass
class ALoad(Instr):
    dst: Reg
    array: Operand
    index: Operand
    is_ref: bool = True

    def operands(self):
        return [self.array, self.index]

    def dest(self):
        return self.dst

    def __repr__(self):
        return f"{self.dst} = {self.array}[{self.index}]"


@dataclass
class AStore(Instr):
    array: Operand
    index: Operand
    src: Operand
    is_ref: bool = True

    def operands(self):
        return [self.array, self.index, self.src]

    def __repr__(self):
        return f"{self.array}[{self.index}] = {self.src}"


@dataclass
class ArrLen(Instr):
    dst: Reg
    array: Operand

    def operands(self):
        return [self.array]

    def dest(self):
        return self.dst

    def __repr__(self):
        return f"{self.dst} = len({self.array})"


@dataclass
class NewObj(Instr):
    """Allocates an instance of ``class_name``.

    ``site_id`` indexes the program-wide allocation-site table, which records
    the initial abstract state (flag/tag initializers) for dependence
    analysis and runtime flag setup. The constructor call, if any, is a
    separate :class:`Call` emitted immediately after.
    """

    dst: Reg
    class_name: str
    site_id: int

    def dest(self):
        return self.dst

    def __repr__(self):
        return f"{self.dst} = new {self.class_name} @site{self.site_id}"


@dataclass
class NewArr(Instr):
    dst: Reg
    elem_type: str
    dims: List[Operand] = field(default_factory=list)
    extra_dims: int = 0

    def operands(self):
        return list(self.dims)

    def dest(self):
        return self.dst

    def __repr__(self):
        dims = "".join(f"[{d}]" for d in self.dims) + "[]" * self.extra_dims
        return f"{self.dst} = new {self.elem_type}{dims}"


@dataclass
class Call(Instr):
    """Direct call to a user method. ``args[0]`` is the receiver."""

    dst: Optional[Reg]
    target: str  # qualified name, e.g. "Text.process" or "Text.<init>"
    args: List[Operand] = field(default_factory=list)

    def operands(self):
        return list(self.args)

    def dest(self):
        return self.dst

    def __repr__(self):
        args = ", ".join(map(repr, self.args))
        dst = f"{self.dst} = " if self.dst else ""
        return f"{dst}call {self.target}({args})"


@dataclass
class CallBuiltin(Instr):
    """Call to a builtin (``key`` is e.g. ``Math.sqrt`` or ``String#.length``)."""

    dst: Optional[Reg]
    key: str
    args: List[Operand] = field(default_factory=list)

    def operands(self):
        return list(self.args)

    def dest(self):
        return self.dst

    def __repr__(self):
        args = ", ".join(map(repr, self.args))
        dst = f"{self.dst} = " if self.dst else ""
        return f"{dst}builtin {self.key}({args})"


@dataclass
class NewTag(Instr):
    dst: Reg
    tag_type: str

    def dest(self):
        return self.dst

    def __repr__(self):
        return f"{self.dst} = new tag({self.tag_type})"


@dataclass
class BindTag(Instr):
    """Binds the tag instance in ``tag`` to the object in ``obj`` (used for
    allocation-site ``add t`` initializers)."""

    obj: Operand
    tag: Operand

    def operands(self):
        return [self.obj, self.tag]

    def __repr__(self):
        return f"bindtag {self.obj} <- {self.tag}"


@dataclass
class Jump(Instr):
    target: int

    def __repr__(self):
        return f"jump B{self.target}"


@dataclass
class Branch(Instr):
    cond: Operand
    true_target: int
    false_target: int

    def operands(self):
        return [self.cond]

    def __repr__(self):
        return f"branch {self.cond} ? B{self.true_target} : B{self.false_target}"


@dataclass
class Ret(Instr):
    src: Optional[Operand] = None

    def operands(self):
        return [self.src] if self.src is not None else []

    def __repr__(self):
        return f"ret {self.src}" if self.src is not None else "ret"


@dataclass
class Exit(Instr):
    """Task exit through exit point ``exit_id`` (see the function's exit
    table for the flag/tag actions this exit applies)."""

    exit_id: int

    def __repr__(self):
        return f"taskexit #{self.exit_id}"


@dataclass
class Trap(Instr):
    """Runtime error (e.g. fell off the end of a non-void method)."""

    message: str

    def __repr__(self):
        return f"trap {self.message!r}"


TERMINATORS = (Jump, Branch, Ret, Exit, Trap)


@dataclass
class BasicBlock:
    block_id: int
    instructions: List[Instr] = field(default_factory=list)

    @property
    def terminator(self) -> Optional[Instr]:
        if self.instructions and isinstance(self.instructions[-1], TERMINATORS):
            return self.instructions[-1]
        return None

    def successors(self) -> List[int]:
        term = self.terminator
        if isinstance(term, Jump):
            return [term.target]
        if isinstance(term, Branch):
            return [term.true_target, term.false_target]
        return []


@dataclass
class TagExitAction:
    """A taskexit tag action: add/clear the tag held by register ``tag_reg``
    on the given parameter. ``tag_type`` is the static type of that tag
    variable (used by the dependence analysis)."""

    op: str  # "add" | "clear"
    tag_reg: Reg
    tag_type: str = ""


@dataclass
class ExitSpec:
    """Flag/tag effects of one task exit point.

    ``flag_updates`` maps parameter index to {flag_name: bool};
    ``tag_updates`` maps parameter index to a list of TagExitActions.
    """

    exit_id: int
    flag_updates: Dict[int, Dict[str, bool]] = field(default_factory=dict)
    tag_updates: Dict[int, List[TagExitAction]] = field(default_factory=dict)


@dataclass
class AllocSite:
    """One ``new C(...){...}`` occurrence."""

    site_id: int
    class_name: str
    flag_inits: Dict[str, bool] = field(default_factory=dict)
    #: Static tag types bound at this site by ``add t`` initializers.
    tag_types: List[str] = field(default_factory=list)
    function: str = ""  # qualified name of the enclosing function

    @property
    def has_tag_inits(self) -> bool:
        return bool(self.tag_types)


@dataclass
class IRFunction:
    """A lowered task or method body."""

    name: str  # qualified: "taskname" for tasks, "Class.method" for methods
    kind: str  # "task" | "method" | "constructor"
    param_names: List[str]
    num_regs: int
    blocks: List[BasicBlock]
    entry: int
    exits: Dict[int, ExitSpec] = field(default_factory=dict)  # tasks only
    return_void: bool = True

    def block(self, block_id: int) -> BasicBlock:
        return self.blocks[block_id]

    def all_instructions(self):
        for block in self.blocks:
            for instr in block.instructions:
                yield block, instr

    def format(self) -> str:
        lines = [f"{self.kind} {self.name}({', '.join(self.param_names)}) "
                 f"regs={self.num_regs} entry=B{self.entry}"]
        for block in self.blocks:
            lines.append(f"  B{block.block_id}:")
            for instr in block.instructions:
                lines.append(f"    {instr!r}")
        return "\n".join(lines)


@dataclass
class IRProgram:
    """All lowered functions plus the program-wide allocation-site table."""

    tasks: Dict[str, IRFunction] = field(default_factory=dict)
    methods: Dict[str, IRFunction] = field(default_factory=dict)  # qualified name
    alloc_sites: Dict[int, AllocSite] = field(default_factory=dict)

    def function(self, qualified_name: str) -> IRFunction:
        if qualified_name in self.methods:
            return self.methods[qualified_name]
        return self.tasks[qualified_name]

    def sites_in(self, function_name: str) -> List[AllocSite]:
        return [
            site
            for site in self.alloc_sites.values()
            if site.function == function_name
        ]
