"""Structural verifier for lowered IR.

Run after lowering (and in tests) to catch builder bugs early: every block
must end in a terminator, jump targets must exist, register indices must be
in range, ``Exit`` may only appear in tasks, and every syntactic exit spec
must be attached to the task's exit table.
"""

from __future__ import annotations

from typing import List

from ..lang.errors import LoweringError
from . import instructions as ir


def verify_function(func: ir.IRFunction) -> List[str]:
    """Returns a list of problems (empty when the function is well-formed)."""
    problems: List[str] = []
    num_blocks = len(func.blocks)
    if not (0 <= func.entry < num_blocks):
        problems.append(f"{func.name}: entry block B{func.entry} out of range")
        return problems
    for block in func.blocks:
        if block.terminator is None:
            problems.append(
                f"{func.name}: block B{block.block_id} lacks a terminator"
            )
        for position, instr in enumerate(block.instructions):
            is_last = position == len(block.instructions) - 1
            if isinstance(instr, ir.TERMINATORS) and not is_last:
                problems.append(
                    f"{func.name}: terminator mid-block in B{block.block_id}"
                )
            for operand in instr.operands():
                if isinstance(operand, ir.Reg) and not (
                    0 <= operand.index < func.num_regs
                ):
                    problems.append(
                        f"{func.name}: register {operand} out of range in "
                        f"B{block.block_id}"
                    )
            dest = instr.dest()
            if dest is not None and not (0 <= dest.index < func.num_regs):
                problems.append(
                    f"{func.name}: destination {dest} out of range in "
                    f"B{block.block_id}"
                )
            if isinstance(instr, ir.Jump) and not (0 <= instr.target < num_blocks):
                problems.append(
                    f"{func.name}: jump to missing block B{instr.target}"
                )
            if isinstance(instr, ir.Branch):
                for target in (instr.true_target, instr.false_target):
                    if not (0 <= target < num_blocks):
                        problems.append(
                            f"{func.name}: branch to missing block B{target}"
                        )
            if isinstance(instr, ir.Exit):
                if func.kind != "task":
                    problems.append(f"{func.name}: taskexit in a non-task")
                elif instr.exit_id not in func.exits:
                    problems.append(
                        f"{func.name}: exit #{instr.exit_id} missing from the "
                        "exit table"
                    )
            if isinstance(instr, ir.Ret) and func.kind == "task":
                problems.append(f"{func.name}: return inside a task")
    return problems


def verify_program(program: ir.IRProgram) -> None:
    """Raises :class:`LoweringError` if any function is malformed."""
    problems: List[str] = []
    for func in list(program.methods.values()) + list(program.tasks.values()):
        problems.extend(verify_function(func))
    for site in program.alloc_sites.values():
        if site.function not in program.methods and site.function not in program.tasks:
            problems.append(
                f"allocation site {site.site_id} references unknown function "
                f"'{site.function}'"
            )
    if problems:
        raise LoweringError("; ".join(problems))
