"""Seeded chaos harness: many fault plans, machine-checked invariants.

A chaos sweep runs one compiled program under ``runs`` deterministic fault
plans (plan 0 is always empty — the control) with detection-driven
resilience enabled, and checks the invariants the resilience machinery
promises:

* **Termination** — every run drains its event queue and passes the
  machine's quiescence check (no locks held, no runnable work stranded).
* **Exactly-once commit** — ``RecoveryStats.duplicate_commits`` stays 0
  and the dead-letter ledger balances
  (``len(result.quarantined) == quarantined_groups``).
* **Semantic equivalence** — a run that quarantined nothing produces the
  same output lines as the fault-free baseline (commit order, and hence
  line order, may legally differ under faults).
* **Bit-identity of the control** — plan 0 re-run with resilience
  *disabled* equals the baseline ``MachineResult`` field for field, and
  re-run with resilience *enabled* changes nothing observable (same
  stdout, same invocation counts, no deaths, no quarantine).

Every plan keeps one protected survivor core fault-free, so recovery
always has somewhere to migrate — a plan that kills every core is not an
interesting chaos case, it is a configuration error the plan layer already
rejects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..fault.plan import CoreCrash, FaultPlan, LinkDegrade, TransientStall
from ..runtime.machine import MachineConfig, MachineResult
from ..schedule.layout import Layout
from .config import ResilienceConfig


def chaos_plan(
    index: int,
    seed: int,
    cores: Sequence[int],
    horizon: int,
    suspicion_window: int,
) -> FaultPlan:
    """Builds the ``index``-th plan of a sweep. Plan 0 is always empty.

    Faults never touch one seed-chosen survivor core, so even a plan that
    crashes or evicts every other core leaves recovery a destination.
    Stall durations range past the suspicion window on purpose: long
    stalls exercise the false-suspicion eviction/rejoin path.
    """
    if index == 0:
        return FaultPlan.make([])
    rng = random.Random(seed)
    ordered = sorted(cores)
    survivor = ordered[rng.randrange(len(ordered))]
    faultable = [c for c in ordered if c != survivor]
    horizon = max(2, horizon)
    events: List[object] = []
    crashes = rng.randint(0, min(2, len(faultable)))
    for core in rng.sample(faultable, crashes):
        events.append(CoreCrash(core=core, cycle=rng.randrange(1, horizon)))
    for _ in range(rng.randint(0, 2)):
        events.append(
            TransientStall(
                core=rng.choice(faultable),
                cycle=rng.randrange(1, horizon),
                duration=rng.randrange(1, max(2, suspicion_window * 2)),
            )
        )
    if rng.random() < 0.5:
        at = rng.randrange(1, horizon)
        events.append(
            LinkDegrade(cycle=at, multiplier=1.0 + rng.random() * 3.0)
        )
        if rng.random() < 0.5:  # sometimes the fabric heals mid-run
            events.append(
                LinkDegrade(cycle=at + rng.randrange(1, horizon), multiplier=1.0)
            )
    return FaultPlan.make(events)


@dataclass
class ChaosRun:
    """Outcome of one seeded plan."""

    index: int
    seed: int
    plan: FaultPlan
    result: Optional[MachineResult] = None
    error: Optional[str] = None
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.error is None and not self.violations


@dataclass
class ChaosReport:
    """Outcome of a full sweep."""

    runs: List[ChaosRun]
    baseline: MachineResult

    @property
    def ok(self) -> bool:
        return all(run.ok for run in self.runs)

    def violations(self) -> List[str]:
        lines: List[str] = []
        for run in self.runs:
            if run.error is not None:
                lines.append(f"plan {run.index} (seed {run.seed}): {run.error}")
            for violation in run.violations:
                lines.append(f"plan {run.index} (seed {run.seed}): {violation}")
        return lines

    def describe(self) -> str:
        faults = sum(len(run.plan.events) for run in self.runs)
        crashed = sum(
            len(run.result.core_death_cycles or {})
            for run in self.runs
            if run.result is not None
        )
        quarantined = sum(
            len(run.result.quarantined or [])
            for run in self.runs
            if run.result is not None
        )
        lines = [
            f"chaos: {len(self.runs)} plan(s), {faults} fault event(s), "
            f"{crashed} core death(s), {quarantined} quarantined group(s)"
        ]
        bad = self.violations()
        if bad:
            lines.append(f"INVARIANT VIOLATIONS ({len(bad)}):")
            lines.extend(f"  {line}" for line in bad)
        else:
            lines.append(
                "all invariants held: termination, exactly-once commit, "
                "quarantine accounting, baseline equivalence"
            )
        return "\n".join(lines)


def _check_run(
    run: ChaosRun, result: MachineResult, baseline: MachineResult
) -> None:
    """Applies the per-run invariants; violations land on ``run``."""
    stats = result.recovery
    if stats is None:
        run.violations.append("resilient run carried no recovery stats")
        return
    if not stats.exactly_once():
        run.violations.append(
            f"exactly-once violated: {stats.duplicate_commits} duplicate commit(s)"
        )
    quarantined = result.quarantined or []
    if len(quarantined) != stats.quarantined_groups:
        run.violations.append(
            f"quarantine ledger imbalance: {len(quarantined)} record(s) vs "
            f"{stats.quarantined_groups} counted"
        )
    if not quarantined:
        # Nothing was dead-lettered, so every logical task committed and
        # the output must match the fault-free baseline up to commit order.
        if sorted(result.stdout.splitlines()) != sorted(
            baseline.stdout.splitlines()
        ):
            run.violations.append("output diverged from fault-free baseline")


def run_chaos(
    compiled,
    layout: Layout,
    args: Sequence[str],
    runs: int = 20,
    base_seed: int = 0,
    resilience: Optional[ResilienceConfig] = None,
) -> ChaosReport:
    """Runs a full chaos sweep and returns the per-plan verdicts.

    Raises nothing on invariant violation — the report carries the
    verdicts so callers (tests, the ``--chaos`` CLI) decide how to fail.
    """
    from ..core.api import run_layout
    from ..core.options import RunOptions

    resilience = resilience if resilience is not None else ResilienceConfig()
    resilience.validate()
    baseline = run_layout(compiled, layout, args)
    horizon = max(2, baseline.total_cycles)
    cores = sorted(layout.cores_used())

    report_runs: List[ChaosRun] = []
    for index in range(runs):
        seed = base_seed + index
        plan = chaos_plan(
            index, seed, cores, horizon, resilience.suspicion_window
        )
        run = ChaosRun(index=index, seed=seed, plan=plan)
        config = MachineConfig(
            fault_plan=None if plan.is_empty() else plan,
            resilience=resilience,
            validate=True,
        )
        try:
            result = run_layout(
                compiled, layout, args, options=RunOptions(machine=config)
            )
        except Exception as exc:  # noqa: BLE001 - verdict, not control flow
            run.error = f"{type(exc).__name__}: {exc}"
            report_runs.append(run)
            continue
        run.result = result
        _check_run(run, result, baseline)
        if index == 0:
            _check_control(run, compiled, layout, args, baseline, resilience)
        report_runs.append(run)
    return ChaosReport(runs=report_runs, baseline=baseline)


def _check_control(
    run: ChaosRun,
    compiled,
    layout: Layout,
    args: Sequence[str],
    baseline: MachineResult,
    resilience: ResilienceConfig,
) -> None:
    """Plan-0 extras: the empty plan must be a true control.

    With resilience disabled the run must be *bit-identical* to the
    baseline; with it enabled (``run.result``) nothing observable may
    change — heartbeats cost cycles but decide nothing on a healthy
    machine.
    """
    from ..core.api import run_layout
    from ..core.options import RunOptions
    from dataclasses import replace

    disabled = replace(resilience, enabled=False)
    config = MachineConfig(fault_plan=None, resilience=disabled)
    control = run_layout(
        compiled, layout, args, options=RunOptions(machine=config)
    )
    if control != baseline:
        run.violations.append(
            "resilience disabled is not bit-identical to the baseline"
        )
    result = run.result
    if result is None:
        return
    if result.stdout != baseline.stdout:
        run.violations.append("fault-free resilient run changed the output")
    if result.invocations != baseline.invocations:
        run.violations.append(
            "fault-free resilient run changed invocation counts"
        )
    if result.core_death_cycles or (result.quarantined or []):
        run.violations.append(
            "fault-free resilient run recorded deaths or quarantine"
        )
