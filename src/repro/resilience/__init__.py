"""Detection-driven resilience: heartbeats, watchdogs, retry, quarantine.

:mod:`repro.fault` (PR 1) gave the machine transactional fault *recovery*,
but the recovery engine fired in the same event as the injected fault — an
oracle no real machine has. This package closes the loop with failure
*detection*:

* :mod:`repro.resilience.config` — :class:`ResilienceConfig`, the policy
  knobs (heartbeat period, suspicion threshold, watchdog multiplier,
  retry/backoff budget). Installed via ``MachineConfig.resilience``;
  absent or disabled, the machine is bit-identical to the seed.
* :mod:`repro.resilience.detector` — per-core heartbeats and the
  missed-beat monitor. Crashes become *silent halts*, discovered from the
  outside with measurable detection latency; long stalls can be falsely
  suspected, evicted, and later rejoined without double-commit.
* :mod:`repro.resilience.watchdog` — per-invocation deadlines from
  profile cost estimates, preemption via snapshot rollback, deterministic
  exponential backoff, and a dead-letter queue
  (``MachineResult.quarantined``) for poison work.
* :mod:`repro.resilience.chaos` — the seeded chaos harness: sweeps of
  random fault plans with machine-checked termination, exactly-once, and
  baseline-equivalence invariants.
"""

from .chaos import ChaosReport, ChaosRun, chaos_plan, run_chaos
from .config import ResilienceConfig
from .detector import FailureDetector
from .watchdog import QuarantineRecord, TaskWatchdog

__all__ = [
    "ChaosReport",
    "ChaosRun",
    "FailureDetector",
    "QuarantineRecord",
    "ResilienceConfig",
    "TaskWatchdog",
    "chaos_plan",
    "run_chaos",
]
