"""Resilience policy knobs.

One :class:`ResilienceConfig` turns the machine's fault handling from
oracle-driven (the injector announces the failure) into detection-driven:
cores emit heartbeats, a monitor suspects silence, dispatched invocations
carry watchdog deadlines, and failed work retries with exponential backoff
until it is quarantined. Everything is deterministic — all thresholds are
fixed cycle counts, so a resilient run is exactly as reproducible as a
plain one.

With ``MachineConfig.resilience`` absent (or ``enabled=False``) none of
this machinery is installed and the run stays bit-identical to the seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..fault.plan import FaultError
from ..ir import costs
from ..runtime.profiler import ProfileData


@dataclass
class ResilienceConfig:
    """Tunables for detection-driven failure handling."""

    #: master switch; False leaves the machine bit-identical to the seed
    enabled: bool = True
    #: cycles between liveness heartbeats on each live core
    heartbeat_interval: int = 500
    #: consecutive missed beats before the monitor suspects a core; the
    #: suspicion window is ``heartbeat_interval * suspicion_beats`` cycles
    suspicion_beats: int = 3
    #: cycles a core spends emitting one heartbeat
    heartbeat_cost: int = costs.HEARTBEAT_COST
    #: watchdog deadline = profile cost estimate x this multiplier (scaled
    #: by the core's speed); None disables the watchdog entirely
    deadline_multiplier: Optional[float] = None
    #: cost estimates for the deadline formula (``avg_task_cycles``); tasks
    #: absent from the profile fall back to ``fallback_deadline``
    profile: Optional[ProfileData] = None
    #: absolute deadline in cycles for tasks with no profile estimate;
    #: None leaves unprofiled tasks un-watched
    fallback_deadline: Optional[int] = None
    #: watchdog preemptions allowed per (task, object-group) before the
    #: objects move to the dead-letter queue
    max_retries: int = 3
    #: backoff before retry attempt ``n`` is ``backoff_base * 2**(n-1)``
    backoff_base: int = 512

    def validate(self) -> None:
        if self.heartbeat_interval <= 0:
            raise FaultError(
                f"heartbeat_interval must be positive: {self.heartbeat_interval}"
            )
        if self.suspicion_beats < 1:
            raise FaultError(
                f"suspicion_beats must be >= 1: {self.suspicion_beats}"
            )
        if self.heartbeat_cost < 0:
            raise FaultError(f"heartbeat_cost must be >= 0: {self.heartbeat_cost}")
        if self.deadline_multiplier is not None and self.deadline_multiplier <= 0:
            raise FaultError(
                f"deadline_multiplier must be positive: {self.deadline_multiplier}"
            )
        if self.fallback_deadline is not None and self.fallback_deadline <= 0:
            raise FaultError(
                f"fallback_deadline must be positive: {self.fallback_deadline}"
            )
        if self.max_retries < 0:
            raise FaultError(f"max_retries must be >= 0: {self.max_retries}")
        if self.backoff_base < 0:
            raise FaultError(f"backoff_base must be >= 0: {self.backoff_base}")

    @property
    def suspicion_window(self) -> int:
        """Cycles of heartbeat silence before a core is suspected."""
        return self.heartbeat_interval * self.suspicion_beats

    def deadline_for(self, task: str) -> Optional[int]:
        """Unscaled watchdog deadline for one invocation of ``task``.

        ``None`` means the invocation runs unwatched (watchdog disabled, or
        the task has neither a profile estimate nor a fallback).
        """
        if self.deadline_multiplier is None:
            return None
        if self.profile is not None:
            estimate = self.profile.avg_task_cycles(task)
            if estimate > 0:
                return max(1, int(estimate * self.deadline_multiplier))
        return self.fallback_deadline

    def backoff_for(self, attempt: int) -> int:
        """Deterministic backoff before retry ``attempt`` (1-based)."""
        return self.backoff_base * (2 ** max(0, attempt - 1))
