"""Watchdog deadlines, retry with exponential backoff, and quarantine.

Every dispatched invocation gets a deadline derived from the task's
profile cost estimate times ``ResilienceConfig.deadline_multiplier``
(scaled by the executing core's speed, so heterogeneous slow cores are not
penalized for being slow by design). An invocation still in flight when
its deadline fires is *preempted*: the dispatch-time snapshot rolls its
eager field writes back, its locks are reclaimed, and its parameter
objects re-enter the routing fabric after a deterministic exponential
backoff — the Bamboo guarantee that tasks never abort *mid-protocol* is
preserved because preemption reuses exactly the crash-rollback transaction
(nothing was published before the commit).

A per-(task, object-group) retry budget bounds the damage a poison input
can do: after ``max_retries`` preemptions the group moves to the
dead-letter queue (``MachineResult.quarantined``), its objects are barred
from every scheduler, and the run degrades gracefully instead of
livelocking on work that can never finish.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from ..obs.events import Quarantine, TaskPreempt, TaskRetry, Truncate
from ..schedule.layout import core_speed, scale_duration
from .config import ResilienceConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..fault.stats import RecoveryStats
    from ..runtime.machine import ManyCoreMachine
    from ..runtime.scheduler import Invocation


@dataclass(frozen=True)
class QuarantineRecord:
    """One dead-lettered (task, object-group): the poison ledger entry."""

    task: str
    object_ids: Tuple[int, ...]
    attempts: int
    cycle: int


class TaskWatchdog:
    """Arms per-invocation deadlines and applies the retry policy."""

    def __init__(
        self,
        machine: "ManyCoreMachine",
        config: ResilienceConfig,
        stats: "RecoveryStats",
    ):
        self.machine = machine
        self.config = config
        self.stats = stats
        #: watchdog preemptions so far per (task, sorted object ids)
        self._attempts: Dict[Tuple[str, Tuple[int, ...]], int] = {}

    # -- arming ---------------------------------------------------------------

    def arm(
        self, core: int, commit_id: int, task: str, start: int, completion: int
    ) -> None:
        """Schedules a deadline check for one dispatched invocation.

        The event is pushed only when it would fire strictly before the
        completion — an on-time task never meets its watchdog.
        """
        deadline = self.config.deadline_for(task)
        if deadline is None:
            return
        scaled = scale_duration(
            deadline, core_speed(self.machine.config.core_speeds, core)
        )
        fire_at = start + scaled
        if fire_at < completion:
            self.machine._push(fire_at, "watchdog", (core, commit_id))

    # -- preemption -----------------------------------------------------------

    def on_deadline(self, core: int, commit_id: int, time: int) -> None:
        """The deadline fired: preempt if the invocation is still in flight."""
        machine = self.machine
        if machine._inflight.get(core) != commit_id:
            return  # completed, or the core crashed and recovery took over
        commit = machine._commits.pop(commit_id, None)
        if commit is None:  # pragma: no cover - defensive
            return
        machine._inflight.pop(core, None)
        invocation = commit.invocation
        self.stats.watchdog_preemptions += 1
        if machine.tracer is not None:
            machine.tracer.emit(
                TaskPreempt(
                    time=time, core=core, task=invocation.task, span=commit_id
                )
            )
            machine.tracer.emit(Truncate(time=time, core=core, at=time))

        # The invocation becomes a no-op transaction: eager field writes
        # roll back, locks release, the completion event will find nothing.
        if commit.snapshot is not None:
            from ..fault.recovery import restore_snapshot

            restore_snapshot(commit.snapshot)
        machine.locks.unlock_all(invocation.objects, core)
        machine.busy_until[core] = time  # the overrun cycles are written off

        self._retry_or_quarantine(core, invocation, time)
        machine._kick(core, time)

    def _retry_or_quarantine(
        self, core: int, invocation: "Invocation", time: int
    ) -> None:
        key = (
            invocation.task,
            tuple(sorted(obj.obj_id for obj in invocation.objects)),
        )
        attempts = self._attempts.get(key, 0) + 1
        self._attempts[key] = attempts
        if attempts > self.config.max_retries:
            self._quarantine(key[0], key[1], attempts, time)
            return
        backoff = self.config.backoff_for(attempts)
        self.stats.retries += 1
        self.stats.backoff_cycles += backoff
        if self.machine.tracer is not None:
            self.machine.tracer.emit(
                TaskRetry(
                    time=time, core=core, task=invocation.task,
                    attempt=attempts, backoff=backoff,
                )
            )
        for obj in invocation.objects:
            self.machine._route_concrete(
                obj, sender_core=core, time=time + backoff
            )

    def _quarantine(
        self, task: str, object_ids: Tuple[int, ...], attempts: int, time: int
    ) -> None:
        """Moves a poison group to the dead-letter queue for good."""
        machine = self.machine
        self.stats.quarantined_groups += 1
        if machine.tracer is not None:
            machine.tracer.emit(
                Quarantine(time=time, task=task, object_ids=object_ids)
            )
        record = QuarantineRecord(
            task=task, object_ids=object_ids, attempts=attempts, cycle=time
        )
        machine.quarantined.append(record)
        machine.poisoned_ids.update(object_ids)
        # Bar stray copies everywhere: purge parameter-set entries and drop
        # ready invocations touching the poison; their healthy co-parameter
        # objects re-route normally.
        for sched_core, scheduler in machine.schedulers.items():
            if sched_core in machine.dead_cores:
                continue
            _, displaced = scheduler.purge_poisoned(machine.poisoned_ids)
            if machine.tracer is not None:
                machine.tracer.queue_sample(
                    time, sched_core, len(scheduler.ready)
                )
            for obj in displaced:
                machine._route_concrete(obj, sender_core=sched_core, time=time)
