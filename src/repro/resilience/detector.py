"""Heartbeats and the missed-beat failure detector.

Every live core emits a heartbeat event each ``heartbeat_interval`` cycles
(paying :data:`repro.ir.costs.HEARTBEAT_COST` on the core). A single
monitor event, on the same period, suspects any core whose last beat is
older than the suspicion window (``interval * suspicion_beats``). The
machine cannot ask the injector what happened — exactly like a runtime on
real silicon, it must classify silence from the outside:

* **Silent halt** (a :class:`repro.fault.plan.CoreCrash` fired): the core
  is truly dead. Suspicion triggers the full recovery path
  (:meth:`repro.fault.recovery.RecoveryEngine.recover_core`) and the
  halt-to-detection latency is accounted in
  ``RecoveryStats.detection_latency_cycles``.
* **Long stall** (a :class:`~repro.fault.plan.TransientStall` outlasting
  the window): the core is alive but frozen. The detector cannot tell, so
  it *evicts* the core identically — rollback, lock reclaim, migration —
  and when the core's heartbeat resumes it rejoins as a live, empty core
  (``false_suspicions``/``rejoins`` telemetry). Exactly-once commit holds
  either way because the evicted core's pending commit was unscheduled.

Heartbeat and monitor events are bookkeeping, not machine activity: they
never extend the run (``total_cycles``) and they stop re-arming once no
real work (arrivals, kicks, completions, pending faults, undetected
halts) remains, so a resilient run still terminates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from ..fault.plan import CoreCrash, FaultEvent
from ..obs.events import Heartbeat
from .config import ResilienceConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..fault.recovery import RecoveryEngine
    from ..fault.stats import RecoveryStats
    from ..runtime.machine import ManyCoreMachine


class FailureDetector:
    """Emits heartbeats, watches for silence, and drives recovery."""

    def __init__(
        self,
        machine: "ManyCoreMachine",
        config: ResilienceConfig,
        engine: "RecoveryEngine",
        stats: "RecoveryStats",
    ):
        self.machine = machine
        self.config = config
        self.engine = engine
        self.stats = stats
        #: last heartbeat seen per core (monitor reads this)
        self.last_beat: Dict[int, int] = {}
        #: cycle at which each halted core went silent (for latency)
        self.halt_cycle: Dict[int, int] = {}
        #: unscheduled in-flight commits of halted cores, rolled back when
        #: the halt is detected
        self.stashed_commits: Dict[int, object] = {}
        #: every core that ever hosted work — the monitor's watch list
        self.watched: List[int] = sorted(machine.layout.cores_used())

    # -- installation --------------------------------------------------------

    def install(self, start_time: int) -> None:
        """Arms the first heartbeat per core and the monitor."""
        interval = self.config.heartbeat_interval
        for core in self.watched:
            self.last_beat[core] = start_time
            self.machine._push(start_time + interval, "hb", (core,))
        self.machine._push(start_time + interval, "monitor", ())

    # -- fault-event routing --------------------------------------------------

    def on_fault(self, event: FaultEvent, time: int) -> None:
        """Applies a fault event under detection-driven semantics: crashes
        are *silent* (recovery waits for the detector); stalls and link
        events keep their oracle behavior (they need no recovery)."""
        if isinstance(event, CoreCrash):
            commit = self.engine.halt_core(event.core, time)
            if event.core in self.machine.halted_cores:
                self.halt_cycle.setdefault(event.core, time)
                if commit is not None:
                    self.stashed_commits[event.core] = commit
        else:
            self.engine.apply(event, time)

    # -- event handlers -------------------------------------------------------

    def on_heartbeat(self, core: int, time: int) -> None:
        machine = self.machine
        if core in machine.halted_cores:
            return  # dead cores do not beat, and never again
        stalled_until = machine.stall_until.get(core, 0)
        if stalled_until > time:
            # Frozen: the beat is missed (this is exactly the silence the
            # monitor watches for), but the core will beat again.
            if self._keep_alive():
                machine._push(
                    time + self.config.heartbeat_interval, "hb", (core,)
                )
            return
        self.last_beat[core] = time
        self.stats.heartbeats += 1
        if machine.tracer is not None:
            machine.tracer.emit(
                Heartbeat(
                    time=time,
                    core=core,
                    begin=max(machine.busy_until[core], time),
                    cost=self.config.heartbeat_cost,
                )
            )
        if self.config.heartbeat_cost:
            machine.busy_until[core] = (
                max(machine.busy_until[core], time) + self.config.heartbeat_cost
            )
            if machine.schedulers[core].has_work():
                # The charge may push busy_until past an already-scheduled
                # kick (which would then find the core "busy" with no
                # completion left to re-kick it); re-kick at the new horizon
                # so queued work can never be stranded by a heartbeat.
                machine._kick(core, time)
        if core in machine.suspected_cores:
            self.engine.rejoin_core(core, time)
        if self._keep_alive():
            machine._push(time + self.config.heartbeat_interval, "hb", (core,))

    def on_monitor(self, time: int) -> None:
        machine = self.machine
        window = self.config.suspicion_window
        for core in self.watched:
            if core in machine.dead_cores:
                continue  # recovered or already-suspected cores
            if time - self.last_beat.get(core, 0) < window:
                continue
            self.stats.suspicions += 1
            if core in machine.halted_cores:
                # A true crash, discovered from the outside.
                latency = time - self.halt_cycle.get(core, time)
                commit = self.stashed_commits.pop(core, None)
                self.engine.recover_core(
                    core, time, commit, detection_latency=latency
                )
            else:
                # A stall outlasting the window: indistinguishable from a
                # crash, so evict — the core rejoins if it beats again.
                self.engine.evict_live_core(core, time)
        if self._keep_alive():
            machine._push(time + self.config.heartbeat_interval, "monitor", ())

    # -- liveness -------------------------------------------------------------

    def _keep_alive(self) -> bool:
        """True while the heartbeat/monitor machinery must stay armed:
        real work remains, or an undetected halt still needs discovering."""
        machine = self.machine
        if machine._real_events > 0:
            return True
        if machine._commits:
            return True
        if machine.halted_cores - machine.dead_cores:
            return True
        for core, scheduler in machine.schedulers.items():
            if core in machine.dead_cores or core in machine.halted_cores:
                continue
            if scheduler.has_work():
                return True
        return False
