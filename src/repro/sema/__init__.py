"""Semantic analysis: types, symbol tables, builtins, and the type checker."""

from . import builtins, types
from .symbols import ClassInfo, FieldInfo, MethodInfo, ProgramInfo, Scope, TaskInfo
from .typecheck import analyze, check_program

__all__ = [
    "ClassInfo",
    "FieldInfo",
    "MethodInfo",
    "ProgramInfo",
    "Scope",
    "TaskInfo",
    "analyze",
    "builtins",
    "check_program",
    "types",
]
