"""Semantic types for the Bamboo type checker."""

from __future__ import annotations

from dataclasses import dataclass

from ..lang import ast
from ..lang.errors import SemanticError, SourceLocation


class Type:
    """Base class for semantic types."""

    def is_numeric(self) -> bool:
        return False

    def is_reference(self) -> bool:
        return False


class _Singleton(Type):
    _NAME = "?"

    def __str__(self) -> str:
        return self._NAME

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self))


class IntType(_Singleton):
    _NAME = "int"

    def is_numeric(self) -> bool:
        return True


class FloatType(_Singleton):
    _NAME = "float"

    def is_numeric(self) -> bool:
        return True


class BoolType(_Singleton):
    _NAME = "boolean"


class StringType(_Singleton):
    _NAME = "String"

    def is_reference(self) -> bool:
        return True


class VoidType(_Singleton):
    _NAME = "void"


class NullType(_Singleton):
    """The type of the ``null`` literal; assignable to any reference type."""

    _NAME = "null"

    def is_reference(self) -> bool:
        return True


class TagHandleType(_Singleton):
    """The type of ``tag`` variables created by ``tag t = new tag(T)``."""

    _NAME = "tag"


INT = IntType()
FLOAT = FloatType()
BOOL = BoolType()
STRING = StringType()
VOID = VoidType()
NULL = NullType()
TAG_HANDLE = TagHandleType()


@dataclass(frozen=True)
class ClassType(Type):
    name: str

    def __str__(self) -> str:
        return self.name

    def is_reference(self) -> bool:
        return True


@dataclass(frozen=True)
class ArrayType(Type):
    elem: Type

    def __str__(self) -> str:
        return f"{self.elem}[]"

    def is_reference(self) -> bool:
        return True


def resolve_type(
    node: ast.TypeNode, class_names: frozenset, location: SourceLocation
) -> Type:
    """Resolves a syntactic :class:`~repro.lang.ast.TypeNode` to a semantic
    type, checking class-name references against ``class_names``."""
    base: Type
    if node.name == "int":
        base = INT
    elif node.name == "float":
        base = FLOAT
    elif node.name == "boolean":
        base = BOOL
    elif node.name == "String":
        base = STRING
    elif node.name == "void":
        base = VOID
    elif node.name in class_names:
        base = ClassType(node.name)
    else:
        raise SemanticError(f"unknown type '{node.name}'", location)
    for _ in range(node.dims):
        base = ArrayType(base)
    return base


def is_assignable(target: Type, value: Type) -> bool:
    """Whether a value of type ``value`` can be stored into ``target``."""
    if target == value:
        return True
    if target == FLOAT and value == INT:
        return True
    if target.is_reference() and value == NULL:
        return True
    return False


def binary_result(op: str, left: Type, right: Type) -> Type:
    """Result type of ``left op right``; raises ``TypeError`` on mismatch.

    The caller (typechecker) translates the ``TypeError`` into a
    :class:`SemanticError` with a source location.
    """
    if op == "+" and (left == STRING or right == STRING):
        if left in (STRING, INT, FLOAT, BOOL) and right in (STRING, INT, FLOAT, BOOL):
            return STRING
        raise TypeError(f"cannot concatenate {left} and {right}")
    if op in ("+", "-", "*", "/"):
        if left.is_numeric() and right.is_numeric():
            return FLOAT if FLOAT in (left, right) else INT
        raise TypeError(f"operator '{op}' needs numeric operands, got {left}, {right}")
    if op == "%":
        if left == INT and right == INT:
            return INT
        raise TypeError(f"operator '%' needs int operands, got {left}, {right}")
    if op in ("<", ">", "<=", ">="):
        if left.is_numeric() and right.is_numeric():
            return BOOL
        raise TypeError(f"operator '{op}' needs numeric operands, got {left}, {right}")
    if op in ("==", "!="):
        if left.is_numeric() and right.is_numeric():
            return BOOL
        if left == right:
            return BOOL
        if left.is_reference() and right.is_reference():
            return BOOL
        raise TypeError(f"cannot compare {left} and {right}")
    if op in ("&&", "||"):
        if left == BOOL and right == BOOL:
            return BOOL
        raise TypeError(f"operator '{op}' needs boolean operands, got {left}, {right}")
    raise TypeError(f"unknown binary operator '{op}'")
