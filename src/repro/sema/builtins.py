"""Builtin library surface available to Bamboo programs.

Three kinds of builtins exist:

* **Namespace functions** — static-style calls through a builtin namespace,
  e.g. ``Math.sqrt(x)``, ``System.printString(s)``, ``Integer.parseInt(s)``.
* **String methods** — instance-style calls on ``String`` receivers,
  e.g. ``s.length()``, ``s.split()``.
* **The implicit ``StartupObject`` class** — the paper's program entry point:
  it carries the command-line arguments in its ``args`` field and is created
  by the runtime in the ``initialstate`` abstract state.

Each builtin records its signature for the type checker, a cycle cost for the
machine model, and a Python implementation for the interpreter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from . import types as ty


@dataclass(frozen=True)
class BuiltinFunction:
    """A builtin callable: either namespaced (``Math.sqrt``) or a String
    method (``qualifier == "String#"``, receiver passed as first arg)."""

    qualifier: str
    name: str
    param_types: Tuple[ty.Type, ...]
    return_type: ty.Type
    cost: int
    impl: Callable

    @property
    def key(self) -> str:
        return f"{self.qualifier}.{self.name}"

    def __reduce__(self):
        # The registry is a fixed table, but the ``impl`` lambdas are not
        # picklable; serialize by key and rehydrate from the table so
        # compiled programs can cross process boundaries (the parallel
        # layout-search evaluator ships them to worker processes).
        return (builtin_by_key, (self.key,))


def _print_string(io, s):
    io.write(str(s))
    return None


def _print_int(io, v):
    io.write(str(v))
    return None


def _print_float(io, v):
    io.write(repr(float(v)))
    return None


def _split_words(io, s: str) -> List[str]:
    return s.split()


def _float_div(a: float, b: float) -> float:
    return a / b


_NAMESPACE_FUNCTIONS: List[BuiltinFunction] = [
    # Math — costs approximate a software FP library on a simple in-order core.
    BuiltinFunction("Math", "sqrt", (ty.FLOAT,), ty.FLOAT, 30, lambda io, x: math.sqrt(x)),
    BuiltinFunction("Math", "sin", (ty.FLOAT,), ty.FLOAT, 40, lambda io, x: math.sin(x)),
    BuiltinFunction("Math", "cos", (ty.FLOAT,), ty.FLOAT, 40, lambda io, x: math.cos(x)),
    BuiltinFunction("Math", "tan", (ty.FLOAT,), ty.FLOAT, 45, lambda io, x: math.tan(x)),
    BuiltinFunction("Math", "atan", (ty.FLOAT,), ty.FLOAT, 45, lambda io, x: math.atan(x)),
    BuiltinFunction(
        "Math", "atan2", (ty.FLOAT, ty.FLOAT), ty.FLOAT, 50, lambda io, y, x: math.atan2(y, x)
    ),
    BuiltinFunction("Math", "exp", (ty.FLOAT,), ty.FLOAT, 45, lambda io, x: math.exp(x)),
    BuiltinFunction("Math", "log", (ty.FLOAT,), ty.FLOAT, 45, lambda io, x: math.log(x)),
    BuiltinFunction(
        "Math", "pow", (ty.FLOAT, ty.FLOAT), ty.FLOAT, 60, lambda io, x, y: math.pow(x, y)
    ),
    BuiltinFunction("Math", "abs", (ty.FLOAT,), ty.FLOAT, 2, lambda io, x: abs(x)),
    BuiltinFunction("Math", "iabs", (ty.INT,), ty.INT, 2, lambda io, x: abs(x)),
    BuiltinFunction(
        "Math", "min", (ty.FLOAT, ty.FLOAT), ty.FLOAT, 2, lambda io, a, b: min(a, b)
    ),
    BuiltinFunction(
        "Math", "max", (ty.FLOAT, ty.FLOAT), ty.FLOAT, 2, lambda io, a, b: max(a, b)
    ),
    BuiltinFunction(
        "Math", "imin", (ty.INT, ty.INT), ty.INT, 2, lambda io, a, b: min(a, b)
    ),
    BuiltinFunction(
        "Math", "imax", (ty.INT, ty.INT), ty.INT, 2, lambda io, a, b: max(a, b)
    ),
    BuiltinFunction("Math", "floor", (ty.FLOAT,), ty.FLOAT, 5, lambda io, x: math.floor(x)),
    BuiltinFunction("Math", "ceil", (ty.FLOAT,), ty.FLOAT, 5, lambda io, x: math.ceil(x)),
    # System — console output is gathered by the interpreter's IO channel.
    BuiltinFunction("System", "printString", (ty.STRING,), ty.VOID, 10, _print_string),
    BuiltinFunction("System", "printInt", (ty.INT,), ty.VOID, 10, _print_int),
    BuiltinFunction("System", "printFloat", (ty.FLOAT,), ty.VOID, 10, _print_float),
    # Integer / conversions
    BuiltinFunction("Integer", "parseInt", (ty.STRING,), ty.INT, 20, lambda io, s: int(s)),
    BuiltinFunction(
        "String", "valueOf", (ty.INT,), ty.STRING, 20, lambda io, v: str(v)
    ),
]

_STRING_METHODS: List[BuiltinFunction] = [
    BuiltinFunction("String#", "length", (ty.STRING,), ty.INT, 2, lambda io, s: len(s)),
    BuiltinFunction(
        "String#", "charAt", (ty.STRING, ty.INT), ty.INT, 2, lambda io, s, i: ord(s[i])
    ),
    BuiltinFunction(
        "String#",
        "substring",
        (ty.STRING, ty.INT, ty.INT),
        ty.STRING,
        5,
        lambda io, s, a, b: s[a:b],
    ),
    BuiltinFunction(
        "String#",
        "equals",
        (ty.STRING, ty.STRING),
        ty.BOOL,
        5,
        lambda io, a, b: a == b,
    ),
    BuiltinFunction(
        "String#",
        "indexOf",
        (ty.STRING, ty.STRING),
        ty.INT,
        10,
        lambda io, s, n: s.find(n),
    ),
    BuiltinFunction(
        "String#", "hashCode", (ty.STRING,), ty.INT, 10,
        lambda io, s: sum((i + 1) * ord(c) for i, c in enumerate(s)) % 2147483647,
    ),
    BuiltinFunction(
        "String#", "split", (ty.STRING,), ty.ArrayType(ty.STRING), 40, _split_words
    ),
]

#: Builtin namespaces; identifiers with these names resolve to builtin
#: function qualifiers rather than variables.
NAMESPACES = frozenset({"Math", "System", "Integer", "String"})


def lookup_namespace_function(qualifier: str, name: str) -> Optional[BuiltinFunction]:
    for fn in _NAMESPACE_FUNCTIONS:
        if fn.qualifier == qualifier and fn.name == name:
            return fn
    return None


def lookup_string_method(name: str) -> Optional[BuiltinFunction]:
    for fn in _STRING_METHODS:
        if fn.name == name:
            return fn
    return None


def all_builtins() -> List[BuiltinFunction]:
    return list(_NAMESPACE_FUNCTIONS) + list(_STRING_METHODS)


def builtin_by_key(key: str) -> BuiltinFunction:
    for fn in all_builtins():
        if fn.key == key:
            return fn
    raise KeyError(key)


#: Name of the implicit startup class (paper §3: "Bamboo applications are
#: started by the creation of a StartupObject object").
STARTUP_CLASS = "StartupObject"
#: Its single declared flag.
STARTUP_FLAG = "initialstate"
#: Its single field: the command-line arguments.
STARTUP_ARGS_FIELD = "args"
