"""Type checker and name resolution for Bamboo programs.

The checker validates the Java-like imperative subset plus all Bamboo task
constructs (guards, taskexit actions, allocation-site flag/tag initializers)
and annotates the AST in place:

* every expression node gets a ``.ty`` attribute (semantic type);
* ``MethodCall`` nodes get ``.call_kind`` (``"method"`` / ``"builtin"`` /
  ``"string"``) and ``.resolved`` (a :class:`MethodInfo` or
  :class:`BuiltinFunction`);
* ``FieldAccess`` nodes get ``.resolved_field`` or ``.is_array_length``;
* ``NewObject`` nodes get ``.resolved_class`` and ``.resolved_ctor``;
* ``VarRef`` nodes get ``.ref_kind`` (``"local"`` or ``"param"``).

Language rules enforced beyond vanilla Java typing (paper §3):

* tasks cannot use ``return`` — control leaves a task via ``taskexit`` or by
  falling off the end of the body (an implicit action-free exit);
* ``taskexit`` only appears in tasks, and its actions may only name task
  parameters and flags declared on the parameter's class;
* task parameters cannot be reassigned (their identity is what taskexit acts
  on);
* there are no global variables — code can only reach its parameters and
  objects reachable from them (structural: the language has no statics).
"""

from __future__ import annotations

from typing import List, Optional

from ..lang import ast
from ..lang.errors import SemanticError
from . import builtins, types as ty
from .symbols import ClassInfo, ProgramInfo, Scope, TaskInfo


class _BodyChecker:
    """Checks one method or task body."""

    def __init__(
        self,
        info: ProgramInfo,
        scope: Scope,
        current_class: Optional[ClassInfo],
        current_task: Optional[TaskInfo],
        return_type: ty.Type,
    ):
        self.info = info
        self.scope = scope
        self.current_class = current_class
        self.current_task = current_task
        self.return_type = return_type
        self.loop_depth = 0
        self.task_param_names = (
            {p.name for p in current_task.decl.params} if current_task else set()
        )
        self.tag_vars: dict = {}

    # -- statements ----------------------------------------------------------

    def check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.scope.push()
            for inner in stmt.statements:
                self.check_stmt(inner)
            self.scope.pop()
        elif isinstance(stmt, ast.VarDeclStmt):
            var_type = self.info.resolve(stmt.var_type, stmt.location)
            if var_type == ty.VOID:
                raise SemanticError("variables cannot have type void", stmt.location)
            if stmt.init is not None:
                init_type = self.check_expr(stmt.init)
                if not ty.is_assignable(var_type, init_type):
                    raise SemanticError(
                        f"cannot initialize {var_type} variable '{stmt.name}' "
                        f"with {init_type}",
                        stmt.location,
                    )
            self.scope.declare(stmt.name, var_type, stmt.location)
        elif isinstance(stmt, ast.TagDeclStmt):
            if self.current_task is None:
                raise SemanticError(
                    "tag instances can only be created inside tasks", stmt.location
                )
            self.scope.declare(stmt.name, ty.TAG_HANDLE, stmt.location)
            self.tag_vars[stmt.name] = stmt.tag_type
        elif isinstance(stmt, ast.AssignStmt):
            self._check_assign(stmt)
        elif isinstance(stmt, ast.IfStmt):
            self._expect_bool(stmt.cond)
            self.check_stmt(stmt.then_branch)
            if stmt.else_branch is not None:
                self.check_stmt(stmt.else_branch)
        elif isinstance(stmt, ast.WhileStmt):
            self._expect_bool(stmt.cond)
            self.loop_depth += 1
            self.check_stmt(stmt.body)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.ForStmt):
            self.scope.push()
            if stmt.init is not None:
                self.check_stmt(stmt.init)
            if stmt.cond is not None:
                self._expect_bool(stmt.cond)
            if stmt.update is not None:
                self.check_stmt(stmt.update)
            self.loop_depth += 1
            self.check_stmt(stmt.body)
            self.loop_depth -= 1
            self.scope.pop()
        elif isinstance(stmt, ast.ReturnStmt):
            self._check_return(stmt)
        elif isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
            if self.loop_depth == 0:
                raise SemanticError("break/continue outside a loop", stmt.location)
        elif isinstance(stmt, ast.ExprStmt):
            self.check_expr(stmt.expr)
        elif isinstance(stmt, ast.TaskExitStmt):
            self._check_taskexit(stmt)
        else:
            raise SemanticError(
                f"unsupported statement {type(stmt).__name__}", stmt.location
            )

    def _check_assign(self, stmt: ast.AssignStmt) -> None:
        target = stmt.target
        if isinstance(target, ast.VarRef):
            if target.name in self.task_param_names:
                raise SemanticError(
                    f"cannot reassign task parameter '{target.name}'",
                    stmt.location,
                )
            target_type = self.scope.lookup(target.name)
            if target_type is None:
                raise SemanticError(
                    f"unknown variable '{target.name}'", target.location
                )
            target.ty = target_type
            target.ref_kind = "local"
        elif isinstance(target, (ast.FieldAccess, ast.ArrayIndex)):
            target_type = self.check_expr(target)
            if isinstance(target, ast.FieldAccess) and getattr(
                target, "is_array_length", False
            ):
                raise SemanticError("cannot assign to array length", stmt.location)
        else:
            raise SemanticError("invalid assignment target", stmt.location)
        value_type = self.check_expr(stmt.value)
        if not ty.is_assignable(target_type, value_type):
            raise SemanticError(
                f"cannot assign {value_type} to {target_type}", stmt.location
            )

    def _check_return(self, stmt: ast.ReturnStmt) -> None:
        if self.current_task is not None:
            raise SemanticError(
                "tasks exit via taskexit, not return", stmt.location
            )
        if stmt.value is None:
            if self.return_type != ty.VOID:
                raise SemanticError(
                    f"missing return value (expected {self.return_type})",
                    stmt.location,
                )
            return
        value_type = self.check_expr(stmt.value)
        if self.return_type == ty.VOID:
            raise SemanticError("void method cannot return a value", stmt.location)
        if not ty.is_assignable(self.return_type, value_type):
            raise SemanticError(
                f"cannot return {value_type} from a {self.return_type} method",
                stmt.location,
            )

    def _check_taskexit(self, stmt: ast.TaskExitStmt) -> None:
        if self.current_task is None:
            raise SemanticError("taskexit outside a task", stmt.location)
        seen = set()
        for param_name, actions in stmt.actions:
            if param_name not in self.task_param_names:
                raise SemanticError(
                    f"taskexit names unknown parameter '{param_name}'",
                    stmt.location,
                )
            if param_name in seen:
                raise SemanticError(
                    f"taskexit lists parameter '{param_name}' twice", stmt.location
                )
            seen.add(param_name)
            param = next(
                p for p in self.current_task.decl.params if p.name == param_name
            )
            class_info = self.info.class_info(param.param_type.name)
            for action in actions:
                if isinstance(action, ast.FlagAction):
                    if action.flag not in class_info.flags:
                        raise SemanticError(
                            f"class '{class_info.name}' has no flag "
                            f"'{action.flag}'",
                            stmt.location,
                        )
                elif isinstance(action, ast.TagAction):
                    if self.scope.lookup(action.tag_var) != ty.TAG_HANDLE:
                        raise SemanticError(
                            f"'{action.tag_var}' is not a tag variable",
                            stmt.location,
                        )
                else:  # pragma: no cover - parser invariant
                    raise SemanticError("invalid taskexit action", stmt.location)

    # -- expressions -----------------------------------------------------------

    def _expect_bool(self, expr: ast.Expr) -> None:
        expr_type = self.check_expr(expr)
        if expr_type != ty.BOOL:
            raise SemanticError(
                f"condition must be boolean, got {expr_type}", expr.location
            )

    def check_expr(self, expr: ast.Expr) -> ty.Type:
        result = self._check_expr(expr)
        expr.ty = result
        return result

    def _check_expr(self, expr: ast.Expr) -> ty.Type:
        if isinstance(expr, ast.IntLit):
            return ty.INT
        if isinstance(expr, ast.FloatLit):
            return ty.FLOAT
        if isinstance(expr, ast.BoolLit):
            return ty.BOOL
        if isinstance(expr, ast.StringLit):
            return ty.STRING
        if isinstance(expr, ast.NullLit):
            return ty.NULL
        if isinstance(expr, ast.ThisRef):
            if self.current_class is None:
                raise SemanticError("'this' outside a method", expr.location)
            return ty.ClassType(self.current_class.name)
        if isinstance(expr, ast.VarRef):
            var_type = self.scope.lookup(expr.name)
            if var_type is None:
                raise SemanticError(f"unknown variable '{expr.name}'", expr.location)
            expr.ref_kind = "param" if expr.name in self.task_param_names else "local"
            return var_type
        if isinstance(expr, ast.FieldAccess):
            return self._check_field_access(expr)
        if isinstance(expr, ast.ArrayIndex):
            array_type = self.check_expr(expr.array)
            if not isinstance(array_type, ty.ArrayType):
                raise SemanticError(
                    f"indexing a non-array of type {array_type}", expr.location
                )
            index_type = self.check_expr(expr.index)
            if index_type != ty.INT:
                raise SemanticError(
                    f"array index must be int, got {index_type}", expr.location
                )
            return array_type.elem
        if isinstance(expr, ast.MethodCall):
            return self._check_call(expr)
        if isinstance(expr, ast.NewObject):
            return self._check_new_object(expr)
        if isinstance(expr, ast.NewArray):
            elem_type = self.info.resolve(expr.elem_type, expr.location)
            if elem_type == ty.VOID:
                raise SemanticError("cannot allocate void arrays", expr.location)
            for dim in expr.dims:
                if self.check_expr(dim) != ty.INT:
                    raise SemanticError(
                        "array dimensions must be int", expr.location
                    )
            result: ty.Type = elem_type
            for _ in range(len(expr.dims) + expr.extra_dims):
                result = ty.ArrayType(result)
            return result
        if isinstance(expr, ast.Binary):
            left = self.check_expr(expr.left)
            right = self.check_expr(expr.right)
            try:
                return ty.binary_result(expr.op, left, right)
            except TypeError as exc:
                raise SemanticError(str(exc), expr.location) from None
        if isinstance(expr, ast.Unary):
            operand = self.check_expr(expr.operand)
            if expr.op == "-":
                if not operand.is_numeric():
                    raise SemanticError(
                        f"unary '-' needs a numeric operand, got {operand}",
                        expr.location,
                    )
                return operand
            if expr.op == "!":
                if operand != ty.BOOL:
                    raise SemanticError(
                        f"'!' needs a boolean operand, got {operand}", expr.location
                    )
                return ty.BOOL
            raise SemanticError(f"unknown unary operator '{expr.op}'", expr.location)
        if isinstance(expr, ast.Cast):
            operand = self.check_expr(expr.operand)
            target = self.info.resolve(expr.target, expr.location)
            if target in (ty.INT, ty.FLOAT) and operand.is_numeric():
                return target
            raise SemanticError(
                f"cannot cast {operand} to {target}", expr.location
            )
        raise SemanticError(
            f"unsupported expression {type(expr).__name__}", expr.location
        )

    def _check_field_access(self, expr: ast.FieldAccess) -> ty.Type:
        receiver_type = self.check_expr(expr.receiver)
        if isinstance(receiver_type, ty.ArrayType):
            if expr.field_name == "length":
                expr.is_array_length = True
                return ty.INT
            raise SemanticError(
                f"arrays have no field '{expr.field_name}'", expr.location
            )
        if isinstance(receiver_type, ty.ClassType):
            class_info = self.info.class_info(receiver_type.name)
            field_info = class_info.fields.get(expr.field_name)
            if field_info is None:
                raise SemanticError(
                    f"class '{receiver_type.name}' has no field "
                    f"'{expr.field_name}'",
                    expr.location,
                )
            expr.resolved_field = field_info
            return field_info.type
        raise SemanticError(
            f"cannot access field '{expr.field_name}' on {receiver_type}",
            expr.location,
        )

    def _check_call(self, expr: ast.MethodCall) -> ty.Type:
        # Builtin namespace call: Math.sqrt(...) where Math is not a variable.
        if (
            isinstance(expr.receiver, ast.VarRef)
            and self.scope.lookup(expr.receiver.name) is None
            and expr.receiver.name in builtins.NAMESPACES
        ):
            fn = builtins.lookup_namespace_function(expr.receiver.name, expr.name)
            if fn is None:
                raise SemanticError(
                    f"unknown builtin '{expr.receiver.name}.{expr.name}'",
                    expr.location,
                )
            self._check_args(expr, list(fn.param_types), fn.key)
            expr.call_kind = "builtin"
            expr.resolved = fn
            return fn.return_type

        if expr.receiver is None:
            # Unqualified call: a method on 'this'.
            if self.current_class is None:
                raise SemanticError(
                    f"unknown function '{expr.name}' (unqualified calls are "
                    "only valid inside methods)",
                    expr.location,
                )
            method = self.current_class.methods.get(expr.name)
            if method is None:
                raise SemanticError(
                    f"class '{self.current_class.name}' has no method "
                    f"'{expr.name}'",
                    expr.location,
                )
            self._check_args(expr, method.param_types, method.qualified_name)
            expr.call_kind = "method"
            expr.resolved = method
            expr.implicit_this = True
            return method.return_type

        receiver_type = self.check_expr(expr.receiver)
        if receiver_type == ty.STRING:
            fn = builtins.lookup_string_method(expr.name)
            if fn is None:
                raise SemanticError(
                    f"String has no method '{expr.name}'", expr.location
                )
            # First parameter of a String method is the receiver itself.
            self._check_args(expr, list(fn.param_types[1:]), fn.key)
            expr.call_kind = "string"
            expr.resolved = fn
            return fn.return_type
        if isinstance(receiver_type, ty.ClassType):
            class_info = self.info.class_info(receiver_type.name)
            method = class_info.methods.get(expr.name)
            if method is None:
                raise SemanticError(
                    f"class '{receiver_type.name}' has no method '{expr.name}'",
                    expr.location,
                )
            self._check_args(expr, method.param_types, method.qualified_name)
            expr.call_kind = "method"
            expr.resolved = method
            expr.implicit_this = False
            return method.return_type
        raise SemanticError(
            f"cannot call method '{expr.name}' on {receiver_type}", expr.location
        )

    def _check_args(
        self, expr: ast.MethodCall, param_types: List[ty.Type], name: str
    ) -> None:
        if len(expr.args) != len(param_types):
            raise SemanticError(
                f"{name} expects {len(param_types)} arguments, got "
                f"{len(expr.args)}",
                expr.location,
            )
        for arg, param_type in zip(expr.args, param_types):
            arg_type = self.check_expr(arg)
            if not ty.is_assignable(param_type, arg_type):
                raise SemanticError(
                    f"argument of type {arg_type} does not match parameter "
                    f"type {param_type} in call to {name}",
                    arg.location,
                )

    def _check_new_object(self, expr: ast.NewObject) -> ty.Type:
        class_info = self.info.classes.get(expr.class_name)
        if class_info is None:
            raise SemanticError(
                f"unknown class '{expr.class_name}'", expr.location
            )
        ctor = class_info.constructor
        if ctor is None:
            if expr.args:
                raise SemanticError(
                    f"class '{expr.class_name}' has no constructor but "
                    "arguments were supplied",
                    expr.location,
                )
        else:
            if len(expr.args) != len(ctor.param_types):
                raise SemanticError(
                    f"constructor of '{expr.class_name}' expects "
                    f"{len(ctor.param_types)} arguments, got {len(expr.args)}",
                    expr.location,
                )
            for arg, param_type in zip(expr.args, ctor.param_types):
                arg_type = self.check_expr(arg)
                if not ty.is_assignable(param_type, arg_type):
                    raise SemanticError(
                        f"constructor argument of type {arg_type} does not "
                        f"match parameter type {param_type}",
                        arg.location,
                    )
        for action in expr.flag_inits:
            if action.flag not in class_info.flags:
                raise SemanticError(
                    f"class '{expr.class_name}' has no flag '{action.flag}'",
                    expr.location,
                )
        for action in expr.tag_inits:
            if action.op != "add":
                raise SemanticError(
                    "only 'add' tag actions are allowed at allocation",
                    expr.location,
                )
            if self.scope.lookup(action.tag_var) != ty.TAG_HANDLE:
                raise SemanticError(
                    f"'{action.tag_var}' is not a tag variable", expr.location
                )
        if expr.flag_inits and self.current_task is None:
            raise SemanticError(
                "allocation-site flag initializers are only allowed in tasks "
                "(methods cannot change abstract object states)",
                expr.location,
            )
        expr.resolved_class = class_info
        expr.resolved_ctor = ctor
        return ty.ClassType(expr.class_name)


def _check_flag_guard(guard: ast.FlagExpr, class_info: ClassInfo, location) -> None:
    if isinstance(guard, ast.FlagRef):
        if guard.name not in class_info.flags:
            raise SemanticError(
                f"class '{class_info.name}' has no flag '{guard.name}'", location
            )
    elif isinstance(guard, ast.FlagNot):
        _check_flag_guard(guard.operand, class_info, location)
    elif isinstance(guard, (ast.FlagAnd, ast.FlagOr)):
        _check_flag_guard(guard.left, class_info, location)
        _check_flag_guard(guard.right, class_info, location)
    elif isinstance(guard, ast.FlagConst):
        pass
    else:  # pragma: no cover - parser invariant
        raise SemanticError("invalid flag guard", location)


def check_program(info: ProgramInfo) -> None:
    """Type-checks the whole program in place (annotating the AST)."""
    # Methods.
    for class_info in info.classes.values():
        methods = list(class_info.methods.values())
        if class_info.constructor is not None:
            methods.append(class_info.constructor)
        for method in methods:
            scope = Scope()
            for param, param_type in zip(method.decl.params, method.param_types):
                if param_type == ty.VOID:
                    raise SemanticError(
                        "parameters cannot have type void", param.location
                    )
                scope.declare(param.name, param_type, param.location)
            checker = _BodyChecker(
                info,
                scope,
                current_class=class_info,
                current_task=None,
                return_type=method.return_type,
            )
            checker.check_stmt(method.decl.body)

    # Tasks.
    for task_info in info.tasks.values():
        scope = Scope()
        task = task_info.decl
        binding_types: dict = {}
        for param in task.params:
            class_info = info.class_info(param.param_type.name)
            _check_flag_guard(param.guard, class_info, param.location)
            for tag_guard in param.tag_guards:
                previous = binding_types.get(tag_guard.binding)
                if previous is not None and previous != tag_guard.tag_type:
                    raise SemanticError(
                        f"tag binding '{tag_guard.binding}' in task "
                        f"'{task.name}' is used with two tag types "
                        f"('{previous}' and '{tag_guard.tag_type}')",
                        param.location,
                    )
                binding_types[tag_guard.binding] = tag_guard.tag_type
            scope.declare(
                param.name, ty.ClassType(param.param_type.name), param.location
            )
        checker = _BodyChecker(
            info,
            scope,
            current_class=None,
            current_task=task_info,
            return_type=ty.VOID,
        )
        checker.check_stmt(task.body)


def analyze(program: ast.Program) -> ProgramInfo:
    """Builds symbol tables and type-checks ``program``; returns the info."""
    info = ProgramInfo(program)
    check_program(info)
    return info
