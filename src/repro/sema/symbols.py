"""Symbol tables for Bamboo programs.

:class:`ProgramInfo` is the semantic index built from a parsed program: class
descriptors (fields, methods, flags), task descriptors, and the implicit
``StartupObject`` class. It is consumed by the type checker, the IR builder,
and every static analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..lang import ast
from ..lang.errors import SemanticError
from . import builtins, types as ty


@dataclass
class FieldInfo:
    name: str
    type: ty.Type
    index: int  # stable slot index within the class


@dataclass
class MethodInfo:
    class_name: str
    decl: ast.MethodDecl
    param_types: List[ty.Type]
    return_type: ty.Type

    @property
    def qualified_name(self) -> str:
        if self.decl.is_constructor:
            return f"{self.class_name}.<init>"
        return f"{self.class_name}.{self.decl.name}"


@dataclass
class ClassInfo:
    name: str
    flags: List[str]
    fields: Dict[str, FieldInfo] = field(default_factory=dict)
    methods: Dict[str, MethodInfo] = field(default_factory=dict)
    constructor: Optional[MethodInfo] = None
    decl: Optional[ast.ClassDecl] = None

    def flag_index(self, flag: str) -> int:
        return self.flags.index(flag)


@dataclass
class TaskInfo:
    decl: ast.TaskDecl
    param_classes: List[str]  # class name of each task parameter

    @property
    def name(self) -> str:
        return self.decl.name


class ProgramInfo:
    """Aggregated semantic information for one Bamboo program."""

    def __init__(self, program: ast.Program):
        self.program = program
        self.classes: Dict[str, ClassInfo] = {}
        self.tasks: Dict[str, TaskInfo] = {}
        self._build(program)

    # -- construction -------------------------------------------------------

    def _build(self, program: ast.Program) -> None:
        declared = {cls.name for cls in program.classes}
        for name in declared:
            if name in builtins.NAMESPACES:
                cls = program.find_class(name)
                raise SemanticError(
                    f"class name '{name}' collides with a builtin namespace",
                    cls.location,
                )
        if builtins.STARTUP_CLASS not in declared:
            self._install_startup_class()
        class_names = frozenset(declared | {builtins.STARTUP_CLASS})

        for cls in program.classes:
            if cls.name in self.classes:
                raise SemanticError(f"duplicate class '{cls.name}'", cls.location)
            info = ClassInfo(name=cls.name, flags=list(cls.flags), decl=cls)
            seen_flags = set()
            for flag in cls.flags:
                if flag in seen_flags:
                    raise SemanticError(
                        f"duplicate flag '{flag}' in class '{cls.name}'", cls.location
                    )
                seen_flags.add(flag)
            for index, fld in enumerate(cls.fields):
                if fld.name in info.fields:
                    raise SemanticError(
                        f"duplicate field '{fld.name}' in class '{cls.name}'",
                        fld.location,
                    )
                info.fields[fld.name] = FieldInfo(
                    name=fld.name,
                    type=ty.resolve_type(fld.field_type, class_names, fld.location),
                    index=index,
                )
            for method in cls.methods:
                param_types = [
                    ty.resolve_type(p.param_type, class_names, p.location)
                    for p in method.params
                ]
                return_type = ty.resolve_type(
                    method.return_type, class_names, method.location
                )
                minfo = MethodInfo(
                    class_name=cls.name,
                    decl=method,
                    param_types=param_types,
                    return_type=return_type,
                )
                if method.is_constructor:
                    if info.constructor is not None:
                        raise SemanticError(
                            f"class '{cls.name}' has multiple constructors "
                            "(overloading is not supported)",
                            method.location,
                        )
                    info.constructor = minfo
                else:
                    if method.name in info.methods:
                        raise SemanticError(
                            f"duplicate method '{method.name}' in class "
                            f"'{cls.name}' (overloading is not supported)",
                            method.location,
                        )
                    info.methods[method.name] = minfo
            self.classes[cls.name] = info

        for task in program.tasks:
            if task.name in self.tasks:
                raise SemanticError(f"duplicate task '{task.name}'", task.location)
            if not task.params:
                raise SemanticError(
                    f"task '{task.name}' has no parameters: task invocation "
                    "is data-driven, so a parameterless task could never be "
                    "dispatched",
                    task.location,
                )
            param_classes: List[str] = []
            seen_params = set()
            for param in task.params:
                if param.name in seen_params:
                    raise SemanticError(
                        f"duplicate parameter '{param.name}' in task '{task.name}'",
                        param.location,
                    )
                seen_params.add(param.name)
                if param.param_type.dims != 0:
                    raise SemanticError(
                        "task parameters must be class-typed objects",
                        param.location,
                    )
                if param.param_type.name not in self.classes:
                    raise SemanticError(
                        f"task parameter type '{param.param_type.name}' is not "
                        "a declared class",
                        param.location,
                    )
                param_classes.append(param.param_type.name)
            self.tasks[task.name] = TaskInfo(decl=task, param_classes=param_classes)

    def _install_startup_class(self) -> None:
        """Adds the implicit StartupObject class to the program AST."""
        decl = ast.ClassDecl(
            name=builtins.STARTUP_CLASS,
            flags=[builtins.STARTUP_FLAG],
            fields=[
                ast.FieldDecl(
                    field_type=ast.TypeNode("String", 1),
                    name=builtins.STARTUP_ARGS_FIELD,
                )
            ],
            methods=[],
        )
        self.program.classes.insert(0, decl)

    # -- lookups -----------------------------------------------------------

    @property
    def class_names(self) -> frozenset:
        return frozenset(self.classes)

    def class_info(self, name: str) -> ClassInfo:
        try:
            return self.classes[name]
        except KeyError:
            raise SemanticError(f"unknown class '{name}'") from None

    def task_info(self, name: str) -> TaskInfo:
        try:
            return self.tasks[name]
        except KeyError:
            raise SemanticError(f"unknown task '{name}'") from None

    def resolve(self, node: ast.TypeNode, location) -> ty.Type:
        return ty.resolve_type(node, self.class_names, location)

    def tasks_touching_class(self, class_name: str) -> List[TaskInfo]:
        """Tasks that take a parameter of the given class."""
        return [
            task
            for task in self.tasks.values()
            if class_name in task.param_classes
        ]


class Scope:
    """A lexical scope stack for local variables inside one body."""

    def __init__(self):
        self._stack: List[Dict[str, ty.Type]] = [{}]

    def push(self) -> None:
        self._stack.append({})

    def pop(self) -> None:
        self._stack.pop()

    def declare(self, name: str, var_type: ty.Type, location) -> None:
        if name in self._stack[-1]:
            raise SemanticError(f"duplicate variable '{name}'", location)
        self._stack[-1][name] = var_type

    def lookup(self, name: str) -> Optional[ty.Type]:
        for frame in reversed(self._stack):
            if name in frame:
                return frame[name]
        return None
