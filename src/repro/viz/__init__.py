"""Visualization: DOT emitters for the paper's figures and text rendering."""

from .dot import cstg_to_dot, taskflow_to_dot, trace_to_dot
from .text import (
    render_critical_path,
    render_histogram,
    render_machine_timeline,
    render_table,
    render_trace,
)

__all__ = [
    "cstg_to_dot",
    "render_critical_path",
    "render_histogram",
    "render_machine_timeline",
    "render_table",
    "render_trace",
    "taskflow_to_dot",
    "trace_to_dot",
]
