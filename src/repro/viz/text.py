"""Plain-text renderings of traces and histograms for terminal output."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..obs.events import Crash, Event, Evict, Rejoin, occupancy_intervals
from ..schedule.critpath import CriticalPath
from ..schedule.simulator import SimResult


def render_trace(result: SimResult, max_events: int = 60) -> str:
    """A per-core timeline of the simulated execution (Figure 6 style)."""
    lines = [f"simulated execution: {result.total_cycles} cycles, "
             f"{len(result.trace)} invocations"]
    for core in sorted(result.core_busy):
        events = result.events_on_core(core)
        lines.append(f"core {core}:")
        for event in events[:max_events]:
            wait = event.start - event.data_ready
            wait_note = f" (waited {wait})" if wait > 0 else ""
            lines.append(
                f"  [{event.start:>8} - {event.end:>8}] {event.task}"
                f"#{event.exit_id}{wait_note}"
            )
        if len(events) > max_events:
            lines.append(f"  ... {len(events) - max_events} more")
    return "\n".join(lines)


def render_critical_path(path: CriticalPath) -> str:
    return path.format()


def render_machine_timeline(
    events: List[Event],
    total_cycles: int,
    cores: Optional[Sequence[int]] = None,
    width: int = 64,
) -> str:
    """A per-core utilization strip chart from a machine's event stream.

    Each core gets one row of ``width`` buckets covering ``[0,
    total_cycles)``; a bucket renders by its busy fraction — ``' '``
    (empty), ``'.'`` (<1/3), ``':'`` (<2/3), ``'#'`` (≥2/3) — and ``'x'``
    once the core is dead (crashed or evicted without rejoining). The
    trailing column is each core's live-window utilization.
    """
    occupancy = occupancy_intervals(events)
    death: Dict[int, int] = {}
    for event in events:
        if isinstance(event, (Crash, Evict)):
            death.setdefault(event.core, event.time)
        elif isinstance(event, Rejoin):
            death.pop(event.core, None)
    if cores is None:
        cores = sorted(set(occupancy) | set(death))
    if not cores or total_cycles <= 0:
        return "(empty timeline)"

    lines = [f"machine timeline: {total_cycles} cycles, {len(cores)} cores"]
    bucket = total_cycles / width
    for core in sorted(cores):
        intervals = sorted(occupancy.get(core, []))
        dead_at = min(death.get(core, total_cycles), total_cycles)
        row = []
        for index in range(width):
            lo = index * bucket
            hi = (index + 1) * bucket
            if lo >= dead_at:
                row.append("x")
                continue
            busy = 0.0
            for start, end, _label, _span in intervals:
                overlap = min(end, hi) - max(start, lo)
                if overlap > 0:
                    busy += overlap
            fraction = busy / (hi - lo)
            if fraction <= 0:
                row.append(" ")
            elif fraction < 1 / 3:
                row.append(".")
            elif fraction < 2 / 3:
                row.append(":")
            else:
                row.append("#")
        live = dead_at
        busy_total = sum(
            max(0, min(end, dead_at) - max(start, 0))
            for start, end, _label, _span in intervals
        )
        utilization = busy_total / live if live else 0.0
        lines.append(f"core {core:>3} |{''.join(row)}| {utilization:6.1%}")
    return "\n".join(lines)


def render_histogram(
    values: Sequence[float],
    bins: int = 20,
    width: int = 50,
    label: str = "",
) -> str:
    """An ASCII histogram (used for the Figure 10 distributions)."""
    if not values:
        return f"{label}: (no data)"
    lo, hi = min(values), max(values)
    if hi == lo:
        return f"{label}: all {len(values)} values = {lo:.0f}"
    span = (hi - lo) / bins
    counts = [0] * bins
    for value in values:
        index = min(bins - 1, int((value - lo) / span))
        counts[index] += 1
    peak = max(counts)
    lines = [f"{label} (n={len(values)}, min={lo:.0f}, max={hi:.0f}):"]
    for index, count in enumerate(counts):
        left = lo + index * span
        bar = "#" * int(round(width * count / peak)) if peak else ""
        pct = 100.0 * count / len(values)
        lines.append(f"  {left:>12.0f} | {bar} {pct:.1f}%")
    return "\n".join(lines)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Fixed-width table rendering for benchmark reports."""
    columns = [
        [str(h)] + [str(row[i]) for row in rows] for i, h in enumerate(headers)
    ]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)
