"""Graphviz DOT emitters for the paper's figures.

* :func:`cstg_to_dot` — Figure 3: the CSTG with profile annotations (double
  ellipses for allocatable states, solid task-transition edges labelled
  ``task:<time,probability>``, dashed new-object edges labelled with
  expected counts).
* :func:`trace_to_dot` — Figure 6: the simulated execution trace with the
  critical path highlighted.
* :func:`taskflow_to_dot` — Figure 8: the task-flow graph (tasks as nodes,
  dataflow edges between them).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..analysis.cstg import CSTG
from ..schedule.coregroup import GroupGraph, TaskEdge
from ..schedule.critpath import CriticalPath
from ..schedule.simulator import SimResult


def _quote(text: str) -> str:
    return '"' + text.replace('"', r"\"") + '"'


def cstg_to_dot(cstg: CSTG, title: str = "CSTG") -> str:
    lines = [f"digraph {_quote(title)} {{", "  rankdir=TB;"]
    node_ids: Dict = {}
    for index, (key, node) in enumerate(sorted(cstg.nodes.items())):
        node_ids[key] = f"n{index}"
        shape = "doublecircle" if node.alloc_sites else "ellipse"
        label = f"{node.class_name}\\n{node.state}:{node.est_time:.0f}"
        lines.append(
            f"  n{index} [shape={shape}, label={_quote(label)}];"
        )
    for edge in cstg.transitions:
        label = f"{edge.task}:<{edge.avg_time:.0f},{edge.probability:.0%}>"
        lines.append(
            f"  {node_ids[edge.src]} -> {node_ids[edge.dst]} "
            f"[label={_quote(label)}];"
        )
    for index, new_edge in enumerate(cstg.new_edges):
        task_node = f"t{index}"
        lines.append(
            f"  {task_node} [shape=box, label={_quote(new_edge.task)}];"
        )
        lines.append(
            f"  {task_node} -> {node_ids[new_edge.dst]} "
            f"[style=dashed, label={_quote(f'{new_edge.avg_count:.1f}')}];"
        )
    lines.append("}")
    return "\n".join(lines)


def trace_to_dot(
    result: SimResult,
    path: Optional[CriticalPath] = None,
    title: str = "trace",
) -> str:
    """Execution-trace graph in the style of Figure 6; critical-path edges
    are drawn dashed/bold."""
    critical: Set[int] = set()
    if path is not None:
        critical = {step.event.event_id for step in path.steps}
    lines = [f"digraph {_quote(title)} {{", "  rankdir=TB;"]
    for event in result.trace:
        color = ", color=red, penwidth=2" if event.event_id in critical else ""
        label = (
            f"{event.task}\\ncore {event.core}\\n[{event.start},{event.end}]"
        )
        lines.append(f"  e{event.event_id} [shape=box, label={_quote(label)}{color}];")
    for event in result.trace:
        for producer, latency in event.inputs:
            if producer is None:
                continue
            style = (
                "style=dashed, color=red, penwidth=2"
                if producer in critical and event.event_id in critical
                else "style=solid"
            )
            lines.append(
                f"  e{producer} -> e{event.event_id} "
                f"[{style}, label={_quote(str(latency))}];"
            )
    lines.append("}")
    return "\n".join(lines)


def taskflow_to_dot(
    edges: List[TaskEdge],
    groups: Optional[GroupGraph] = None,
    title: str = "taskflow",
) -> str:
    """Task-flow diagram in the style of Figure 8."""
    tasks: Set[str] = set()
    for edge in edges:
        tasks.add(edge.src)
        tasks.add(edge.dst)
    lines = [f"digraph {_quote(title)} {{", "  rankdir=LR;"]
    if groups is not None:
        for group in groups.groups:
            members = sorted(t for t in group.tasks if t in tasks)
            if len(members) > 1:
                lines.append(f"  subgraph cluster_g{group.group_id} {{")
                lines.append("    style=dashed;")
                for task in members:
                    lines.append(f"    {_quote(task)};")
                lines.append("  }")
    for task in sorted(tasks):
        lines.append(f"  {_quote(task)} [shape=box];")
    for edge in edges:
        style = "dashed" if edge.kind == "new" else "solid"
        lines.append(
            f"  {_quote(edge.src)} -> {_quote(edge.dst)} "
            f"[style={style}, label={_quote(f'{edge.objects_per_invocation:.1f}')}];"
        )
    lines.append("}")
    return "\n".join(lines)
