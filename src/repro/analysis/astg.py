"""Dependence analysis: abstract state transition graphs (paper §4.1).

For every class that can serve as a task parameter, the analysis computes a
finite state machine — the ASTG — whose nodes are the abstract states
instances of the class can reach and whose edges are the transitions tasks
cause. Allocation sites seed the initial states; a worklist closes the set
under all reachable task exits whose guards the state satisfies.

The per-class ASTGs are later merged into the combined state transition
graph (CSTG, :mod:`repro.analysis.cstg`) that drives implementation
synthesis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..ir import cfg
from ..ir import instructions as ir
from ..sema.symbols import ProgramInfo
from .astate import AState, guard_matches


@dataclass(frozen=True)
class ASTGEdge:
    """A task-caused transition between two abstract states of one class."""

    src: AState
    dst: AState
    task: str
    param_index: int
    exit_id: int

    def label(self) -> str:
        return f"{self.task}[{self.param_index}]#{self.exit_id}"


@dataclass
class ASTG:
    """The abstract state transition graph of one class."""

    class_name: str
    states: Set[AState] = field(default_factory=set)
    #: states objects of this class can be allocated in -> allocation sites
    initial: Dict[AState, List[int]] = field(default_factory=dict)
    edges: List[ASTGEdge] = field(default_factory=list)

    def out_edges(self, state: AState) -> List[ASTGEdge]:
        return [e for e in self.edges if e.src == state]

    def successors(self, state: AState) -> Set[AState]:
        return {e.dst for e in self.out_edges(state)}

    def format(self) -> str:
        lines = [f"ASTG for class {self.class_name}:"]
        for state in sorted(self.states):
            marker = "*" if state in self.initial else " "
            lines.append(f"  {marker} {state}")
        for edge in self.edges:
            lines.append(
                f"    {edge.src} --{edge.task}#{edge.exit_id}--> {edge.dst}"
            )
        return "\n".join(lines)


def _exit_effects_for_param(
    func: ir.IRFunction, exit_id: int, param_index: int
) -> Tuple[Dict[str, bool], List[Tuple[str, int]]]:
    """Returns (flag updates, tag deltas) one exit applies to one parameter."""
    spec = func.exits[exit_id]
    flag_updates = spec.flag_updates.get(param_index, {})
    tag_deltas: List[Tuple[str, int]] = []
    for action in spec.tag_updates.get(param_index, []):
        tag_deltas.append((action.tag_type, 1 if action.op == "add" else -1))
    return flag_updates, tag_deltas


def _apply_effects(
    state: AState, flag_updates: Dict[str, bool], tag_deltas: List[Tuple[str, int]]
) -> AState:
    result = state.with_flags(flag_updates)
    for tag_type, delta in tag_deltas:
        result = result.with_tag_delta(tag_type, delta)
    return result


def initial_states(
    info: ProgramInfo, ir_program: ir.IRProgram, class_name: str
) -> Dict[AState, List[int]]:
    """Abstract states objects of ``class_name`` can be allocated in.

    Only allocation sites inside *tasks* feed the global object space (the
    runtime enqueues those objects for dispatch); the implicit startup
    object is modelled as a virtual site ``-1``.
    """
    out: Dict[AState, List[int]] = {}
    for site in ir_program.alloc_sites.values():
        if site.class_name != class_name:
            continue
        if site.function not in ir_program.tasks:
            continue
        flags = [f for f, v in site.flag_inits.items() if v]
        tags = {t: 1 for t in site.tag_types}
        state = AState.make(flags, tags)
        out.setdefault(state, []).append(site.site_id)
    if class_name == "StartupObject":
        state = AState.make(["initialstate"])
        out.setdefault(state, []).append(-1)
    return out


def build_astg(
    info: ProgramInfo, ir_program: ir.IRProgram, class_name: str
) -> ASTG:
    """Builds the ASTG for one class with a worklist fixpoint."""
    astg = ASTG(class_name=class_name)
    astg.initial = initial_states(info, ir_program, class_name)
    worklist: List[AState] = list(astg.initial)
    astg.states.update(worklist)
    seen_edges: Set[ASTGEdge] = set()

    touching = [
        (task_info, param_index, param)
        for task_info in info.tasks.values()
        for param_index, param in enumerate(task_info.decl.params)
        if param.param_type.name == class_name
    ]

    while worklist:
        state = worklist.pop()
        for task_info, param_index, param in touching:
            if not guard_matches(param, state):
                continue
            func = ir_program.tasks[task_info.name]
            for exit_id in sorted(cfg.reachable_exits(func)):
                flag_updates, tag_deltas = _exit_effects_for_param(
                    func, exit_id, param_index
                )
                next_state = _apply_effects(state, flag_updates, tag_deltas)
                edge = ASTGEdge(
                    src=state,
                    dst=next_state,
                    task=task_info.name,
                    param_index=param_index,
                    exit_id=exit_id,
                )
                if edge not in seen_edges:
                    seen_edges.add(edge)
                    astg.edges.append(edge)
                if next_state not in astg.states:
                    astg.states.add(next_state)
                    worklist.append(next_state)
    return astg


def build_all_astgs(
    info: ProgramInfo, ir_program: ir.IRProgram
) -> Dict[str, ASTG]:
    """Builds ASTGs for every class that serves as a task parameter."""
    param_classes: Set[str] = set()
    for task_info in info.tasks.values():
        param_classes.update(task_info.param_classes)
    return {
        class_name: build_astg(info, ir_program, class_name)
        for class_name in sorted(param_classes)
    }
