"""Reachability-graph abstraction for the disjointness analysis (paper §4.2).

The analysis reasons about *static reachability graphs*: abstract nodes
stand for runtime objects, directed edges for possible heap references, and
each node's *origin set* records which function parameters may reach it —
the paper's "reachability states". A flow-insensitive fixpoint over the IR
of one function builds the graph; method calls are handled with summaries
computed bottom-up (with a global fixpoint, so recursion converges).

Node kinds:

* ``param k``   — the k-th parameter object itself;
* ``content n`` — an unknown object loaded out of node ``n``'s region;
* ``alloc s``   — objects allocated at site ``s`` inside this function;
* ``fresh c``   — objects returned by the callee at call site ``c``.

This is a deliberate simplification of Jenista & Demsky's analysis (field-
insensitive, flow-insensitive) that preserves the property the compiler
needs: a sound "may the regions reachable from two distinct task parameters
overlap after this task runs?" answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set, Tuple

from ..ir import instructions as ir


@dataclass(frozen=True)
class RNode:
    """An abstract heap node."""

    kind: str  # "param" | "content" | "alloc" | "fresh"
    key: object

    def __repr__(self) -> str:
        return f"{self.kind}({self.key})"


def param_node(index: int) -> RNode:
    return RNode("param", index)


def content_node(base: RNode) -> RNode:
    return RNode("content", base)


def alloc_node(site_id: int) -> RNode:
    return RNode("alloc", site_id)


def fresh_node(call_key: Tuple[str, int, int]) -> RNode:
    return RNode("fresh", call_key)


def origin_params(node: RNode) -> FrozenSet[int]:
    """The parameter indices whose region this node belongs to a priori."""
    if node.kind == "param":
        return frozenset([node.key])
    if node.kind == "content":
        return origin_params(node.key)
    return frozenset()


@dataclass
class MethodSummary:
    """Caller-visible effects of a method on reachability.

    ``connects`` holds directed pairs (i, j): the callee may create a path
    from parameter i's region to parameter j's region. ``ret_from`` lists
    parameters whose region the return value may point into; ``ret_fresh``
    is true when the return value may be a fresh object.
    """

    connects: Set[Tuple[int, int]] = field(default_factory=set)
    ret_from: Set[int] = field(default_factory=set)
    ret_fresh: bool = False

    def copy(self) -> "MethodSummary":
        return MethodSummary(
            connects=set(self.connects),
            ret_from=set(self.ret_from),
            ret_fresh=self.ret_fresh,
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, MethodSummary)
            and self.connects == other.connects
            and self.ret_from == other.ret_from
            and self.ret_fresh == other.ret_fresh
        )


@dataclass
class ReachGraph:
    """Result of analyzing one function."""

    func_name: str
    num_params: int
    edges: Dict[RNode, Set[RNode]] = field(default_factory=dict)
    points_to: Dict[int, Set[RNode]] = field(default_factory=dict)  # reg -> nodes
    return_nodes: Set[RNode] = field(default_factory=set)

    def add_edge(self, src: RNode, dst: RNode) -> bool:
        bucket = self.edges.setdefault(src, set())
        if dst in bucket:
            return False
        bucket.add(dst)
        return True

    def reachable_from(self, roots: Set[RNode]) -> Set[RNode]:
        seen: Set[RNode] = set()
        stack = list(roots)
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.edges.get(node, ()))
        return seen

    def region_of_param(self, index: int) -> Set[RNode]:
        return self.reachable_from({param_node(index)})

    def sharing_pairs(self) -> Set[FrozenSet[int]]:
        """Unordered parameter pairs whose regions may overlap."""
        regions = [self.region_of_param(i) for i in range(self.num_params)]
        pairs: Set[FrozenSet[int]] = set()
        for i in range(self.num_params):
            for j in range(i + 1, self.num_params):
                overlap = regions[i] & regions[j]
                if overlap:
                    pairs.add(frozenset((i, j)))
                    continue
                # A node of origin j inside region i (or vice versa) also
                # means the regions are not disjoint.
                if any(j in origin_params(n) for n in regions[i]) or any(
                    i in origin_params(n) for n in regions[j]
                ):
                    pairs.add(frozenset((i, j)))
        return pairs


class _FunctionAnalyzer:
    def __init__(
        self,
        func: ir.IRFunction,
        ir_program: ir.IRProgram,
        summaries: Dict[str, MethodSummary],
    ):
        self.func = func
        self.ir_program = ir_program
        self.summaries = summaries
        self.graph = ReachGraph(
            func_name=func.name, num_params=len(func.param_names)
        )
        for index in range(len(func.param_names)):
            self.graph.points_to[index] = {param_node(index)}

    def _pts(self, operand: ir.Operand) -> Set[RNode]:
        if isinstance(operand, ir.Reg):
            return self.graph.points_to.setdefault(operand.index, set())
        return set()

    def _add_pts(self, reg: ir.Reg, nodes: Set[RNode]) -> bool:
        bucket = self.graph.points_to.setdefault(reg.index, set())
        before = len(bucket)
        bucket.update(nodes)
        return len(bucket) != before

    def _load_result(self, bases: Set[RNode]) -> Tuple[Set[RNode], bool]:
        """Nodes produced by loading a reference out of ``bases``."""
        result: Set[RNode] = set()
        changed = False
        for base in bases:
            if base.kind == "content" and base.key.kind == "content":
                # Depth-limit content chains at 2 to keep the domain finite.
                content = base
            else:
                content = content_node(base)
            result.add(content)
            changed |= self.graph.add_edge(base, content)
            result.update(self.graph.edges.get(base, ()))
        return result, changed

    def run(self) -> ReachGraph:
        changed = True
        while changed:
            changed = False
            for block in self.func.blocks:
                for index, instr in enumerate(block.instructions):
                    changed |= self._transfer(block.block_id, index, instr)
        return self.graph

    def _transfer(self, block_id: int, index: int, instr: ir.Instr) -> bool:
        graph = self.graph
        changed = False
        if isinstance(instr, ir.Move):
            changed |= self._add_pts(instr.dst, self._pts(instr.src))
        elif isinstance(instr, ir.Load):
            if instr.is_ref:
                result, load_changed = self._load_result(self._pts(instr.obj))
                changed |= load_changed
                changed |= self._add_pts(instr.dst, result)
        elif isinstance(instr, ir.Store):
            if instr.is_ref:
                for base in self._pts(instr.obj):
                    for value in self._pts(instr.src):
                        changed |= graph.add_edge(base, value)
        elif isinstance(instr, ir.ALoad):
            if instr.is_ref:
                result, load_changed = self._load_result(self._pts(instr.array))
                changed |= load_changed
                changed |= self._add_pts(instr.dst, result)
        elif isinstance(instr, ir.AStore):
            if instr.is_ref:
                for base in self._pts(instr.array):
                    for value in self._pts(instr.src):
                        changed |= graph.add_edge(base, value)
        elif isinstance(instr, (ir.NewObj,)):
            changed |= self._add_pts(instr.dst, {alloc_node(instr.site_id)})
        elif isinstance(instr, ir.NewArr):
            changed |= self._add_pts(
                instr.dst, {fresh_node((self.func.name, block_id, index))}
            )
        elif isinstance(instr, ir.Call):
            changed |= self._apply_call(block_id, index, instr)
        elif isinstance(instr, ir.Ret):
            if instr.src is not None:
                before = len(graph.return_nodes)
                graph.return_nodes.update(self._pts(instr.src))
                changed |= len(graph.return_nodes) != before
        # CallBuiltin results are strings/numbers/immutable arrays of
        # strings: they cannot link object regions, so they are ignored.
        return changed

    def _apply_call(self, block_id: int, index: int, instr: ir.Call) -> bool:
        summary = self.summaries.get(instr.target, MethodSummary())
        changed = False
        args = instr.args
        for i, j in summary.connects:
            if i >= len(args) or j >= len(args):
                continue
            for a in self._pts(args[i]):
                for b in self._pts(args[j]):
                    changed |= self.graph.add_edge(a, b)
        if instr.dst is not None:
            result: Set[RNode] = set()
            for k in summary.ret_from:
                if k >= len(args):
                    continue
                bases = self._pts(args[k])
                loaded, load_changed = self._load_result(bases)
                changed |= load_changed
                result.update(bases)
                result.update(loaded)
            if summary.ret_fresh:
                result.add(fresh_node((self.func.name, block_id, index)))
            changed |= self._add_pts(instr.dst, result)
        return changed


def summarize(graph: ReachGraph) -> MethodSummary:
    """Extracts a caller-visible summary from an analyzed method body."""
    summary = MethodSummary()
    for i in range(graph.num_params):
        region = graph.region_of_param(i)
        for node in region:
            for j in origin_params(node):
                if j != i:
                    summary.connects.add((i, j))
    for node in graph.return_nodes:
        origins = origin_params(node)
        if origins:
            summary.ret_from.update(origins)
        else:
            summary.ret_fresh = True
    # The return value may also reach content of parameters transitively:
    # approximate by closing return origins over reachability.
    closure = graph.reachable_from(set(graph.return_nodes))
    for node in closure:
        summary.ret_from.update(origin_params(node))
    return summary


def analyze_function(
    func: ir.IRFunction,
    ir_program: ir.IRProgram,
    summaries: Dict[str, MethodSummary],
) -> ReachGraph:
    return _FunctionAnalyzer(func, ir_program, summaries).run()


def compute_method_summaries(
    ir_program: ir.IRProgram,
) -> Dict[str, MethodSummary]:
    """Bottom-up summary computation with a global fixpoint (handles
    recursion and mutual recursion)."""
    summaries: Dict[str, MethodSummary] = {
        name: MethodSummary() for name in ir_program.methods
    }
    changed = True
    while changed:
        changed = False
        for name, func in ir_program.methods.items():
            graph = analyze_function(func, ir_program, summaries)
            new_summary = summarize(graph)
            if new_summary != summaries[name]:
                summaries[name] = new_summary
                changed = True
    return summaries
