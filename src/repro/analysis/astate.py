"""Abstract object states.

An abstract state node in the paper's ASTG contains (1) the values of all
the object's flags and (2) a 1-limited count — 0, 1, or "at least 1" — of
the tag instances of each type bound to the object (§4.1). We represent the
count domain as 0 / 1 / 2 where 2 means "two or more".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Tuple

from ..lang import ast


@dataclass(frozen=True)
class AState:
    """An abstract object state: true flags + 1-limited tag counts."""

    flags: FrozenSet[str]
    tags: Tuple[Tuple[str, int], ...] = ()

    def _sort_key(self):
        return (tuple(sorted(self.flags)), self.tags)

    def __lt__(self, other: "AState") -> bool:
        # frozenset comparison is subset ordering, not a total order, so
        # sorting uses the lexicographic flag tuple instead.
        return self._sort_key() < other._sort_key()

    def __le__(self, other: "AState") -> bool:
        return self._sort_key() <= other._sort_key()

    def __gt__(self, other: "AState") -> bool:
        return self._sort_key() > other._sort_key()

    def __ge__(self, other: "AState") -> bool:
        return self._sort_key() >= other._sort_key()

    @staticmethod
    def make(flags: Iterable[str] = (), tags: Dict[str, int] = None) -> "AState":
        tag_items = tuple(
            sorted((t, min(max(c, 0), 2)) for t, c in (tags or {}).items() if c > 0)
        )
        return AState(flags=frozenset(flags), tags=tag_items)

    def tag_count(self, tag_type: str) -> int:
        for name, count in self.tags:
            if name == tag_type:
                return count
        return 0

    def with_flag(self, flag: str, value: bool) -> "AState":
        flags = set(self.flags)
        if value:
            flags.add(flag)
        else:
            flags.discard(flag)
        return AState(flags=frozenset(flags), tags=self.tags)

    def with_flags(self, updates: Dict[str, bool]) -> "AState":
        flags = set(self.flags)
        for flag, value in updates.items():
            if value:
                flags.add(flag)
            else:
                flags.discard(flag)
        return AState(flags=frozenset(flags), tags=self.tags)

    def with_tag_delta(self, tag_type: str, delta: int) -> "AState":
        counts = dict(self.tags)
        counts[tag_type] = min(max(counts.get(tag_type, 0) + delta, 0), 2)
        return AState.make(self.flags, counts)

    def label(self) -> str:
        parts = sorted(self.flags)
        for tag_type, count in self.tags:
            suffix = "+" if count >= 2 else ""
            parts.append(f"<{tag_type}{suffix}>")
        return "{" + ",".join(parts) + "}" if parts else "{}"

    def __str__(self) -> str:
        return self.label()


def eval_flag_expr(expr: ast.FlagExpr, state: AState) -> bool:
    """Evaluates a task guard flag expression against an abstract state."""
    if isinstance(expr, ast.FlagRef):
        return expr.name in state.flags
    if isinstance(expr, ast.FlagConst):
        return expr.value
    if isinstance(expr, ast.FlagNot):
        return not eval_flag_expr(expr.operand, state)
    if isinstance(expr, ast.FlagAnd):
        return eval_flag_expr(expr.left, state) and eval_flag_expr(expr.right, state)
    if isinstance(expr, ast.FlagOr):
        return eval_flag_expr(expr.left, state) or eval_flag_expr(expr.right, state)
    raise TypeError(f"unknown flag expression {type(expr).__name__}")


def guard_matches(param: ast.TaskParam, state: AState) -> bool:
    """Whether an abstract state satisfies a task parameter's full guard
    (flag expression plus tag-presence constraints)."""
    if not eval_flag_expr(param.guard, state):
        return False
    for tag_guard in param.tag_guards:
        if state.tag_count(tag_guard.tag_type) < 1:
            return False
    return True


def runtime_guard_matches(param: ast.TaskParam, obj) -> bool:
    """Runtime version of :func:`guard_matches` over a concrete object."""
    state = AState.make(
        obj.flags, {t: len(tags) for t, tags in obj.tags.items()}
    )
    return guard_matches(param, state)


def state_of_object(obj) -> AState:
    """The abstract state a concrete heap object currently occupies."""
    return AState.make(obj.flags, {t: len(tags) for t, tags in obj.tags.items()})
