"""Static analyses: dependence (ASTG/CSTG) and disjointness/locking."""

from .astate import AState, eval_flag_expr, guard_matches, state_of_object
from .astg import ASTG, ASTGEdge, build_all_astgs, build_astg
from .cstg import CSTG, CSTGNode, NewObjectEdge, TransitionEdge
from .diagnostics import Diagnostic, analyze_diagnostics, warnings_only
from .disjoint import DisjointnessResult, analyze_disjointness
from .locks import LockPlan, TaskLockPlan, build_lock_plan

__all__ = [
    "ASTG",
    "ASTGEdge",
    "AState",
    "CSTG",
    "CSTGNode",
    "Diagnostic",
    "DisjointnessResult",
    "LockPlan",
    "NewObjectEdge",
    "TaskLockPlan",
    "TransitionEdge",
    "analyze_diagnostics",
    "analyze_disjointness",
    "build_all_astgs",
    "build_astg",
    "build_lock_plan",
    "eval_flag_expr",
    "guard_matches",
    "state_of_object",
    "warnings_only",
]
