"""Whole-program disjointness analysis (paper §4.2).

Bamboo's task parameter objects are intended to be the roots of disjoint
heap data structures. This analysis detects, per task, which parameter
pairs may violate that property — either because the task's own code links
their regions or because a method it calls does. The compiler uses the
result to generate the locking strategy (:mod:`repro.analysis.locks`) that
guarantees transactional task semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set

from ..ir import instructions as ir
from ..sema.symbols import ProgramInfo
from .reachgraph import (
    MethodSummary,
    ReachGraph,
    analyze_function,
    compute_method_summaries,
)


@dataclass
class DisjointnessResult:
    """Analysis output for a whole program."""

    #: per task: parameter index pairs whose heap regions may overlap
    sharing: Dict[str, Set[FrozenSet[int]]] = field(default_factory=dict)
    #: the per-method reachability summaries (exposed for tests/diagnostics)
    summaries: Dict[str, MethodSummary] = field(default_factory=dict)
    #: the per-task reachability graphs
    graphs: Dict[str, ReachGraph] = field(default_factory=dict)

    def task_is_disjoint(self, task: str) -> bool:
        return not self.sharing.get(task)

    def sharing_groups(self, task: str) -> List[Set[int]]:
        """Connected components of the sharing relation: parameter groups
        that must be protected by a shared lock."""
        pairs = self.sharing.get(task, set())
        parent: Dict[int, int] = {}

        def find(x: int) -> int:
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: int, b: int) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for pair in pairs:
            members = sorted(pair)
            union(members[0], members[1])
        groups: Dict[int, Set[int]] = {}
        for x in parent:
            groups.setdefault(find(x), set()).add(x)
        return sorted(groups.values(), key=lambda g: sorted(g))


def analyze_disjointness(
    info: ProgramInfo, ir_program: ir.IRProgram
) -> DisjointnessResult:
    """Runs the analysis for every task in the program."""
    result = DisjointnessResult()
    result.summaries = compute_method_summaries(ir_program)
    for task_name, func in ir_program.tasks.items():
        graph = analyze_function(func, ir_program, result.summaries)
        result.graphs[task_name] = graph
        result.sharing[task_name] = graph.sharing_pairs()
    return result
