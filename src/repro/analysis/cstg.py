"""Combined state transition graph (CSTG, paper §4.3.1).

The CSTG merges the per-class ASTGs into one graph describing the whole
application: nodes are (class, abstract state) pairs; solid edges are the
transitions tasks cause; dashed edges are new-object edges from the task
that allocates to the abstract state of the freshly created object. The
graph is annotated with profile statistics — expected task execution time
per exit, exit probabilities, and expected allocation counts — forming the
Markov model the scheduling simulator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from typing import TYPE_CHECKING

from ..ir import instructions as ir
from ..sema.symbols import ProgramInfo

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.profiler import ProfileData
from .astate import AState
from .astg import ASTG

NodeKey = Tuple[str, AState]  # (class name, abstract state)


@dataclass
class CSTGNode:
    class_name: str
    state: AState
    #: allocation sites that create objects in this state (paper: drawn with
    #: two concentric ellipses when non-empty)
    alloc_sites: List[int] = field(default_factory=list)
    #: lower-bound estimate of cycles to finish processing an object here
    est_time: float = 0.0

    @property
    def key(self) -> NodeKey:
        return (self.class_name, self.state)

    def label(self) -> str:
        return f"{self.class_name}:{self.state}"


@dataclass
class TransitionEdge:
    """Solid edge: a task moves an object between abstract states."""

    src: NodeKey
    dst: NodeKey
    task: str
    param_index: int
    exit_id: int
    avg_time: float = 0.0
    probability: float = 0.0

    def label(self) -> str:
        return f"{self.task}:<{self.avg_time:.0f},{self.probability:.0%}>"


@dataclass
class NewObjectEdge:
    """Dashed edge: a task allocation site creates objects in a state."""

    task: str
    exit_id: int
    site_id: int
    dst: NodeKey
    avg_count: float = 0.0


class CSTG:
    """The combined state transition graph with profile annotations."""

    def __init__(self, info: ProgramInfo):
        self.info = info
        self.nodes: Dict[NodeKey, CSTGNode] = {}
        self.transitions: List[TransitionEdge] = []
        self.new_edges: List[NewObjectEdge] = []

    # -- construction ----------------------------------------------------------

    @staticmethod
    def build(
        info: ProgramInfo,
        ir_program: ir.IRProgram,
        astgs: Dict[str, ASTG],
        profile: Optional["ProfileData"] = None,
    ) -> "CSTG":
        graph = CSTG(info)
        for astg in astgs.values():
            for state in astg.states:
                node = CSTGNode(class_name=astg.class_name, state=state)
                graph.nodes[node.key] = node
            for state, sites in astg.initial.items():
                graph.nodes[(astg.class_name, state)].alloc_sites = sorted(sites)
            for edge in astg.edges:
                graph.transitions.append(
                    TransitionEdge(
                        src=(astg.class_name, edge.src),
                        dst=(astg.class_name, edge.dst),
                        task=edge.task,
                        param_index=edge.param_index,
                        exit_id=edge.exit_id,
                    )
                )
        graph._build_new_edges(ir_program, astgs)
        if profile is not None:
            graph.annotate(profile)
        return graph

    def _build_new_edges(
        self, ir_program: ir.IRProgram, astgs: Dict[str, ASTG]
    ) -> None:
        from ..ir import cfg

        for task_name, func in ir_program.tasks.items():
            sites = ir_program.sites_in(task_name)
            if not sites:
                continue
            reachable = sorted(cfg.reachable_exits(func))
            for site in sites:
                if site.class_name not in astgs:
                    continue  # class never serves as a task parameter
                flags = [f for f, v in site.flag_inits.items() if v]
                tags = {t: 1 for t in site.tag_types}
                dst_state = AState.make(flags, tags)
                dst = (site.class_name, dst_state)
                if dst not in self.nodes:
                    continue
                for exit_id in reachable:
                    self.new_edges.append(
                        NewObjectEdge(
                            task=task_name,
                            exit_id=exit_id,
                            site_id=site.site_id,
                            dst=dst,
                        )
                    )

    # -- profile annotation -------------------------------------------------------

    def annotate(self, profile: "ProfileData") -> None:
        """Attaches profile statistics to edges and recomputes node times."""
        for edge in self.transitions:
            edge.avg_time = profile.avg_cycles(edge.task, edge.exit_id)
            edge.probability = profile.exit_probability(edge.task, edge.exit_id)
        kept_new_edges: List[NewObjectEdge] = []
        for edge in self.new_edges:
            allocs = profile.avg_allocs(edge.task, edge.exit_id)
            edge.avg_count = allocs.get(edge.site_id, 0.0)
            if edge.avg_count > 0 or profile.invocations(edge.task) == 0:
                kept_new_edges.append(edge)
        self.new_edges = kept_new_edges
        self._compute_node_times()

    def _compute_node_times(self) -> None:
        """Lower-bound completion-time estimate per node (min over paths to a
        terminal state of the sum of expected task times)."""
        INF = float("inf")
        est: Dict[NodeKey, float] = {}
        outgoing: Dict[NodeKey, List[TransitionEdge]] = {}
        for edge in self.transitions:
            outgoing.setdefault(edge.src, []).append(edge)
        for key in self.nodes:
            est[key] = 0.0 if key not in outgoing else INF
        changed = True
        while changed:
            changed = False
            for key, edges in outgoing.items():
                best = min(
                    (edge.avg_time + est.get(edge.dst, 0.0) for edge in edges),
                    default=0.0,
                )
                if best < est[key]:
                    est[key] = best
                    changed = True
        for key, node in self.nodes.items():
            node.est_time = est[key] if est[key] != INF else 0.0

    # -- queries ---------------------------------------------------------------------

    def transitions_of_task(self, task: str) -> List[TransitionEdge]:
        return [e for e in self.transitions if e.task == task]

    def new_edges_of_task(self, task: str) -> List[NewObjectEdge]:
        return [e for e in self.new_edges if e.task == task]

    def node(self, key: NodeKey) -> CSTGNode:
        return self.nodes[key]

    def task_names(self) -> List[str]:
        return sorted({e.task for e in self.transitions})

    def guard_nodes_of_task(self, task: str) -> Dict[int, List[NodeKey]]:
        """Maps each parameter index of ``task`` to the CSTG nodes whose
        states satisfy that parameter's guard."""
        from .astate import guard_matches

        task_info = self.info.task_info(task)
        result: Dict[int, List[NodeKey]] = {}
        for param_index, param in enumerate(task_info.decl.params):
            matches = [
                key
                for key, node in sorted(
                    self.nodes.items(), key=lambda kv: (kv[0][0], kv[0][1])
                )
                if node.class_name == param.param_type.name
                and guard_matches(param, node.state)
            ]
            result[param_index] = matches
        return result

    def format(self) -> str:
        lines = ["CSTG:"]
        for key in sorted(self.nodes, key=lambda k: (k[0], k[1])):
            node = self.nodes[key]
            alloc = " (alloc)" if node.alloc_sites else ""
            lines.append(f"  {node.label()}: est={node.est_time:.0f}{alloc}")
        lines.append("  transitions:")
        for edge in self.transitions:
            lines.append(
                f"    {self.nodes[edge.src].label()} --{edge.task}#{edge.exit_id}"
                f"<{edge.avg_time:.0f},{edge.probability:.0%}>--> "
                f"{self.nodes[edge.dst].label()}"
            )
        lines.append("  new-object edges:")
        for edge in self.new_edges:
            lines.append(
                f"    {edge.task}#{edge.exit_id}@site{edge.site_id} ..{edge.avg_count:.1f}.. "
                f"{self.nodes[edge.dst].label()}"
            )
        return "\n".join(lines)
