"""Developer diagnostics derived from the dependence analysis.

The ASTGs make whole-program task-dispatch behaviour statically visible, so
several classes of likely bugs can be reported at compile time:

* **dead task** — no reachable abstract state satisfies some parameter's
  guard: the runtime can never invoke the task;
* **never-set flag** — a declared flag no allocation site or taskexit ever
  sets to true: guards mentioning it positively are unsatisfiable;
* **parked state** — a reachable non-empty abstract state that no task
  consumes: objects entering it sit in the object space forever (this is
  informational — terminal result states are often intended).

These power ``python -m repro compile`` output and are available as
:func:`analyze_diagnostics`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from ..sema.symbols import ProgramInfo
from ..ir import instructions as ir
from .astate import guard_matches
from .astg import ASTG


@dataclass(frozen=True)
class Diagnostic:
    """One finding. ``severity`` is ``"warning"`` or ``"info"``."""

    kind: str  # "dead-task" | "never-set-flag" | "parked-state"
    severity: str
    subject: str
    message: str

    def __str__(self) -> str:
        return f"{self.severity}: {self.message}"


def _flags_ever_set(info: ProgramInfo, ir_program: ir.IRProgram) -> Dict[str, Set[str]]:
    """Per class: flags that some allocation site or taskexit sets true."""
    out: Dict[str, Set[str]] = {name: set() for name in info.classes}
    for site in ir_program.alloc_sites.values():
        for flag, value in site.flag_inits.items():
            if value:
                out[site.class_name].add(flag)
    for task_name, func in ir_program.tasks.items():
        task_info = info.task_info(task_name)
        for spec in func.exits.values():
            for param_index, updates in spec.flag_updates.items():
                class_name = task_info.param_classes[param_index]
                for flag, value in updates.items():
                    if value:
                        out[class_name].add(flag)
    # The runtime sets the startup flag itself.
    out.setdefault("StartupObject", set()).add("initialstate")
    return out


def analyze_diagnostics(
    info: ProgramInfo,
    ir_program: ir.IRProgram,
    astgs: Dict[str, ASTG],
) -> List[Diagnostic]:
    """Computes all diagnostics for a compiled program."""
    diagnostics: List[Diagnostic] = []

    # -- never-set flags ------------------------------------------------------
    ever_set = _flags_ever_set(info, ir_program)
    for class_name, class_info in sorted(info.classes.items()):
        for flag in class_info.flags:
            if flag not in ever_set.get(class_name, set()):
                diagnostics.append(
                    Diagnostic(
                        kind="never-set-flag",
                        severity="warning",
                        subject=f"{class_name}.{flag}",
                        message=(
                            f"flag '{flag}' of class '{class_name}' is never "
                            "set to true by any allocation site or taskexit"
                        ),
                    )
                )

    # -- dead tasks --------------------------------------------------------------
    for task_name in sorted(info.tasks):
        task_info = info.tasks[task_name]
        for param_index, param in enumerate(task_info.decl.params):
            astg = astgs.get(param.param_type.name)
            states = astg.states if astg else set()
            if not any(guard_matches(param, state) for state in states):
                diagnostics.append(
                    Diagnostic(
                        kind="dead-task",
                        severity="warning",
                        subject=task_name,
                        message=(
                            f"task '{task_name}' can never be invoked: no "
                            f"reachable state of class "
                            f"'{param.param_type.name}' satisfies the guard "
                            f"of parameter '{param.name}' ({param.guard})"
                        ),
                    )
                )
                break  # one finding per task is enough

    # -- parked states --------------------------------------------------------------
    for class_name, astg in sorted(astgs.items()):
        consumers = [
            param
            for task_info in info.tasks.values()
            for param in task_info.decl.params
            if param.param_type.name == class_name
        ]
        for state in sorted(astg.states):
            if not state.flags and not state.tags:
                continue  # the empty state is the conventional "retired"
            if not any(guard_matches(param, state) for param in consumers):
                diagnostics.append(
                    Diagnostic(
                        kind="parked-state",
                        severity="info",
                        subject=f"{class_name}:{state}",
                        message=(
                            f"objects of class '{class_name}' reaching state "
                            f"{state} are consumed by no task (terminal "
                            "result state, or a leak)"
                        ),
                    )
                )
    return diagnostics


def warnings_only(diagnostics: List[Diagnostic]) -> List[Diagnostic]:
    return [d for d in diagnostics if d.severity == "warning"]
