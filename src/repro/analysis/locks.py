"""Lock-strategy generation from the disjointness analysis (paper §4.2).

Bamboo transactions are lightweight: at invocation, a task simply locks its
parameter objects; if the runtime cannot acquire every lock it releases
them all and runs a different task — tasks never abort (§1, §4.7).

When the disjointness analysis proves all parameter regions disjoint,
per-parameter-object locks suffice. When a task may *introduce* sharing
between two parameters' regions, the compiler emits a shared-lock directive:
at commit time the runtime merges the two objects' lock groups, so any later
task operating on either structure serializes with tasks operating on the
other. This mirrors the paper's "adds a shared lock for the two parameter
objects".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..sema.symbols import ProgramInfo
from .disjoint import DisjointnessResult


@dataclass
class TaskLockPlan:
    """Locking directive for one task."""

    task: str
    num_params: int
    #: parameter index groups whose lock domains must be merged when the
    #: task commits (empty for fully disjoint tasks)
    shared_groups: List[Set[int]] = field(default_factory=list)

    @property
    def is_fine_grained(self) -> bool:
        return not self.shared_groups


@dataclass
class LockPlan:
    tasks: Dict[str, TaskLockPlan] = field(default_factory=dict)

    def plan_for(self, task: str) -> TaskLockPlan:
        return self.tasks[task]

    def fine_grained_tasks(self) -> List[str]:
        return sorted(t for t, p in self.tasks.items() if p.is_fine_grained)

    def shared_lock_tasks(self) -> List[str]:
        return sorted(t for t, p in self.tasks.items() if not p.is_fine_grained)


def build_lock_plan(
    info: ProgramInfo, disjointness: DisjointnessResult
) -> LockPlan:
    """Builds the per-task locking strategy from the analysis result."""
    plan = LockPlan()
    for task_name, task_info in info.tasks.items():
        task_plan = TaskLockPlan(
            task=task_name, num_params=len(task_info.decl.params)
        )
        task_plan.shared_groups = [
            group
            for group in disjointness.sharing_groups(task_name)
            if len(group) > 1
        ]
        plan.tasks[task_name] = task_plan
    return plan
