"""Host-level chaos: seeded worker crashes and hangs, checked invariants.

The mirror image of :mod:`repro.resilience.chaos`, one level up: instead
of injecting faults into the *simulated* TILEPro64 machine, this harness
injects them into the *host* processes that evaluate candidate layouts —
a worker calls ``os._exit`` mid-task (OOM-killer stand-in) or sleeps past
its deadline (hang stand-in) — and checks the supervision invariants:

* **Termination** — every chaos synthesis returns (no lost runs, no
  hangs; bounded retries guarantee it by construction).
* **Result bit-identity** — the chaos run's :class:`SynthesisReport` is
  identical to the fault-free baseline in every deterministic field
  (layout, cycles, history, budget accounting). Supervision may only
  *rescue* work, never change it.
* **Counter consistency** — retry/rebuild counters match the injected
  plan: every fired fault forced at least one retry and at least one
  pool rebuild happened; plan 0 (empty, the control) fired nothing and
  its counters are all zero.

Wall-clock timing decides *how many collateral* tasks a pool failure
takes down, so counter invariants are inequalities; the search result
itself is exact.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class HostFault:
    """One injected worker misbehavior, keyed by dispatch sequence id."""

    dispatch: int
    kind: str  # "crash" | "hang"


@dataclass(frozen=True)
class HostChaosPlan:
    """A seeded set of host faults for one supervised synthesis.

    ``dispatch`` ids index the supervisor's global submission counter
    (retries included), so a plan is pure data: the same plan against the
    same workload designates the same simulations.
    """

    faults: Tuple[HostFault, ...]
    seed: int = 0

    @classmethod
    def make(
        cls,
        index: int,
        seed: int,
        horizon: int,
        max_crashes: int = 2,
        max_hangs: int = 1,
    ) -> "HostChaosPlan":
        """Builds the ``index``-th plan of a sweep. Plan 0 is always
        empty — the control. ``horizon`` should be the fault-free run's
        dispatch count (``SynthesisReport.evaluations``) so designated
        ids actually fire."""
        if index == 0:
            return cls(faults=(), seed=seed)
        rng = random.Random(seed)
        horizon = max(1, horizon)
        crashes = rng.randint(1, max(1, min(max_crashes, horizon)))
        hangs = rng.randint(0, max_hangs)
        picks = rng.sample(range(horizon), min(horizon, crashes + hangs))
        faults = tuple(
            HostFault(dispatch=pick, kind="crash" if i < crashes else "hang")
            for i, pick in enumerate(picks)
        )
        return cls(faults=faults, seed=seed)

    def kind_for(self, dispatch: int) -> Optional[str]:
        for fault in self.faults:
            if fault.dispatch == dispatch:
                return fault.kind
        return None

    def is_empty(self) -> bool:
        return not self.faults

    def describe(self) -> str:
        if not self.faults:
            return "host chaos: empty plan (control)"
        parts = ", ".join(
            f"{fault.kind}@{fault.dispatch}"
            for fault in sorted(self.faults, key=lambda f: f.dispatch)
        )
        return f"host chaos: {len(self.faults)} fault(s): {parts}"


@dataclass(frozen=True)
class DistFault:
    """One injected distributed-search misbehavior.

    ``key`` indexes either the coordinator's global dispatch sequence
    (dispatch faults) or the chaos proxy's downstream message sequence
    (wire faults), so — like :class:`HostFault` — a plan is pure data.
    """

    key: int
    kind: str  # dispatch: crash_worker | hang_worker | expire_lease
    #          # wire:     drop_conn | garble
    param: Optional[float] = None


#: faults the coordinator injects itself, keyed by dispatch seq
DIST_DISPATCH_KINDS = ("crash_worker", "hang_worker", "expire_lease")
#: faults the chaos proxy injects in transit, keyed by message seq
DIST_WIRE_KINDS = ("drop_conn", "garble")


@dataclass(frozen=True)
class DistChaosPlan:
    """A seeded set of faults for one distributed search — the host-chaos
    idea one level up: instead of misbehaving worker *processes* inside
    one search, whole worker *hosts* and their connections misbehave.

    Dispatch faults ride on shard messages (the worker crashes hard or
    hangs past its lease; the coordinator force-expires a lease); wire
    faults fire in the proxy between the two (connection dropped with an
    RST, a message garbled in transit); ``kill_worker`` tells the
    harness to SIGKILL one worker process externally mid-run. Plan 0 of
    every sweep is empty — the control.
    """

    dispatch_faults: Tuple[DistFault, ...] = ()
    wire_faults: Tuple[DistFault, ...] = ()
    kill_worker: bool = False
    seed: int = 0

    @classmethod
    def make(
        cls,
        index: int,
        seed: int,
        horizon: int,
        hang_seconds: float = 3.0,
        max_faults: int = 2,
    ) -> "DistChaosPlan":
        """Builds the ``index``-th plan of a sweep. ``horizon`` should be
        the shard count: with one dispatch per shard guaranteed, every
        designated id in ``1..horizon`` is reached. Fault families rotate
        on fixed strides (like :class:`repro.serve.netchaos.NetChaosPlan`)
        so even a 4-plan sweep exercises dispatch faults, wire faults,
        and an external worker SIGKILL."""
        if index == 0:
            return cls(seed=seed)
        rng = random.Random(seed)
        horizon = max(1, horizon)
        count = rng.randint(1, max(1, min(max_faults, horizon)))
        picks = rng.sample(range(1, horizon + 1), min(horizon, count))
        dispatch = tuple(
            DistFault(
                key=pick,
                kind=rng.choice(DIST_DISPATCH_KINDS),
                param=hang_seconds,
            )
            for pick in sorted(picks)
        )
        wire: Tuple[DistFault, ...] = ()
        if index % 2 == 0:
            wire = tuple(
                DistFault(
                    key=pick, kind=rng.choice(DIST_WIRE_KINDS)
                )
                for pick in sorted(
                    rng.sample(range(1, horizon + 1), min(horizon, 2))
                )
            )
        return cls(
            dispatch_faults=dispatch,
            wire_faults=wire,
            kill_worker=index % 3 == 2,
            seed=seed,
        )

    @classmethod
    def scripted(
        cls,
        crash=(),
        hang=(),
        expire=(),
        hang_seconds: float = 3.0,
    ) -> "DistChaosPlan":
        """A hand-written plan from explicit dispatch ids — what the
        CLI's ``--chaos-crash/--chaos-hang/--chaos-expire`` flags and the
        CI dist-smoke job build."""
        faults = tuple(
            [DistFault(key=s, kind="crash_worker") for s in crash]
            + [
                DistFault(key=s, kind="hang_worker", param=hang_seconds)
                for s in hang
            ]
            + [DistFault(key=s, kind="expire_lease") for s in expire]
        )
        return cls(dispatch_faults=faults)

    def dispatch_fault(self, seq: int) -> Optional[Tuple[str, Optional[float]]]:
        """The coordinator's hook: the fault riding on dispatch ``seq``."""
        for fault in self.dispatch_faults:
            if fault.key == seq:
                return fault.kind, fault.param
        return None

    def wire_fault(self, seq: int) -> Optional[str]:
        """The proxy's hook: the fault for downstream message ``seq``."""
        for fault in self.wire_faults:
            if fault.key == seq:
                return fault.kind
        return None

    def is_empty(self) -> bool:
        return not (
            self.dispatch_faults or self.wire_faults or self.kill_worker
        )

    def describe(self) -> str:
        if self.is_empty():
            return "dist chaos: empty plan (control)"
        parts = [
            f"{fault.kind}@{fault.key}"
            for fault in sorted(
                self.dispatch_faults + self.wire_faults,
                key=lambda f: (f.key, f.kind),
            )
        ]
        if self.kill_worker:
            parts.append("kill_worker")
        return f"dist chaos: {len(parts)} fault(s): {', '.join(parts)}"


@dataclass
class HostChaosRun:
    """Outcome of one plan."""

    index: int
    seed: int
    plan: HostChaosPlan
    report: Optional[object] = None  # SynthesisReport
    supervision: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.error is None and not self.violations


@dataclass
class HostChaosReport:
    """Outcome of a full host-chaos sweep."""

    runs: List[HostChaosRun]
    baseline: object  # SynthesisReport

    @property
    def ok(self) -> bool:
        return all(run.ok for run in self.runs)

    def violations(self) -> List[str]:
        lines: List[str] = []
        for run in self.runs:
            if run.error is not None:
                lines.append(f"plan {run.index} (seed {run.seed}): {run.error}")
            for violation in run.violations:
                lines.append(f"plan {run.index} (seed {run.seed}): {violation}")
        return lines

    def total(self, counter: str) -> int:
        return sum(
            int(run.supervision.get(counter, 0))
            for run in self.runs
            if run.supervision is not None
        )

    def describe(self) -> str:
        injected = sum(len(run.plan.faults) for run in self.runs)
        lines = [
            f"host chaos: {len(self.runs)} plan(s), {injected} fault(s) "
            f"planned, {self.total('injected_crashes')} crash(es) + "
            f"{self.total('injected_hangs')} hang(s) fired, "
            f"{self.total('worker_retries')} retry(ies), "
            f"{self.total('pool_rebuilds')} pool rebuild(s)"
        ]
        bad = self.violations()
        if bad:
            lines.append(f"INVARIANT VIOLATIONS ({len(bad)}):")
            lines.extend(f"  {line}" for line in bad)
        else:
            lines.append(
                "all invariants held: termination, result bit-identity, "
                "retry/rebuild accounting"
            )
        return "\n".join(lines)


def _report_key(report) -> Tuple:
    """Every deterministic field of a SynthesisReport, as comparable data
    (wall-clock excluded)."""
    return (
        report.estimated_cycles,
        report.layout.as_dict(),
        report.layout.num_cores,
        report.history,
        report.evaluations,
        report.cache_hits,
        report.requested_evaluations,
        report.pruned_evaluations,
        report.iterations,
    )


def _check_run(run: HostChaosRun, baseline) -> None:
    """Applies the per-plan invariants; violations land on ``run``."""
    report = run.report
    stats = run.supervision or {}
    if _report_key(report) != _report_key(baseline):
        run.violations.append(
            "chaos result diverged from fault-free baseline "
            f"({report.estimated_cycles} vs {baseline.estimated_cycles} "
            "cycles)"
        )
    fired = int(stats.get("injected_crashes", 0)) + int(
        stats.get("injected_hangs", 0)
    )
    retries = int(stats.get("worker_retries", 0))
    rebuilds = int(stats.get("pool_rebuilds", 0))
    if run.plan.is_empty():
        if fired or retries or rebuilds:
            run.violations.append(
                "control plan recorded supervision activity: "
                f"fired={fired} retries={retries} rebuilds={rebuilds}"
            )
    else:
        if fired == 0:
            run.violations.append(
                "no planned fault fired (horizon too large for workload?)"
            )
        if retries < fired:
            run.violations.append(
                f"{fired} fault(s) fired but only {retries} retry(ies) "
                "recorded"
            )
        if fired and rebuilds < 1:
            run.violations.append(
                f"{fired} fault(s) fired but the pool was never rebuilt"
            )
        if rebuilds > retries:
            run.violations.append(
                f"{rebuilds} rebuild(s) exceed {retries} retry(ies)"
            )


def run_host_chaos(
    compiled,
    profile,
    num_cores: int,
    options=None,
    runs: int = 4,
    base_seed: int = 0,
    workers: int = 2,
    policy=None,
) -> HostChaosReport:
    """Runs a full host-chaos sweep and returns the per-plan verdicts.

    ``options`` is the :class:`repro.SynthesisOptions` template for every
    run (anneal schedule, hints, ...); the harness forces ``workers=1``
    with supervision off for the baseline and ``workers``/supervision/
    chaos for the plans. Like :func:`repro.resilience.chaos.run_chaos`,
    nothing raises on violation — the report carries the verdicts.
    """
    from dataclasses import replace

    from ..core.options import SynthesisOptions
    from ..core.pipeline import synthesize_layout
    from .supervise import RetryPolicy

    options = options if options is not None else SynthesisOptions()
    policy = policy or RetryPolicy()
    baseline = synthesize_layout(
        compiled, profile, num_cores,
        options=replace(
            options, workers=1, supervise=False, host_chaos=None,
        ),
    )
    horizon = max(1, baseline.evaluations)

    report_runs: List[HostChaosRun] = []
    for index in range(runs):
        seed = base_seed + index
        plan = HostChaosPlan.make(index, seed, horizon)
        run = HostChaosRun(index=index, seed=seed, plan=plan)
        try:
            report = synthesize_layout(
                compiled, profile, num_cores,
                options=replace(
                    options,
                    workers=max(2, workers),
                    supervise=True,
                    retry_policy=policy,
                    host_chaos=None if plan.is_empty() else plan,
                ),
            )
        except Exception as exc:  # noqa: BLE001 - verdict, not control flow
            run.error = f"{type(exc).__name__}: {exc}"
            report_runs.append(run)
            continue
        run.report = report
        # Plan 0 also runs *with* supervision, so its zero-counter check
        # exercises the supervised path, not a disabled one.
        run.supervision = report.search_metrics.get("supervision") or {}
        _check_run(run, baseline)
        report_runs.append(run)
    return HostChaosReport(runs=report_runs, baseline=baseline)
