"""Hardened on-disk record storage shared by every persistence format.

Two formats currently live on disk — search checkpoints
(``repro.search/checkpoint-v1``, :mod:`repro.search.checkpoint`) and the
serving layer's persistent simulation cache
(``repro.serve/simcache-v1``, :mod:`repro.serve.store`). Both need the
same hardening, so the machinery lives here once:

* **Atomic writes** — write ``<path>.tmp`` in the same directory, flush,
  fsync, ``os.replace`` onto the target, then fsync the directory so the
  rename itself survives a host crash. A crash mid-write leaves the
  previous file intact; there is never a moment with no valid record on
  disk.
* **Versioned header** — one ASCII JSON line naming the format, so a
  reader can refuse a foreign or out-of-date file before touching the
  payload. Formats are bumped on any payload shape change and old
  versions are *not* migrated — these files are caches and crash
  artifacts, not archives.
* **Digest verification** — the header carries the sha256 of the payload
  bytes, so truncation and corruption are detected before unpickling.

File layout::

    {"format": "<fmt>", "digest": "<sha256>", ...extra}\\n
    <payload bytes>

Readers raise :class:`StorageError` (with a machine-checkable ``code``)
on any missing, corrupt, truncated, or incompatible file; writers raise
nothing beyond the underlying ``OSError``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from typing import Dict, Optional, Tuple, Type

from ..lang.errors import BambooError


class StorageError(BambooError):
    """A stored record is missing, corrupt, or incompatible.

    ``code`` is one of ``unreadable``, ``not_record``,
    ``format_mismatch``, ``digest_mismatch``, ``unpicklable``, or
    ``wrong_type`` so callers can react without parsing messages.
    """

    def __init__(self, message: str, code: str = "unreadable"):
        super().__init__(message)
        self.code = code


def payload_digest(payload: bytes) -> str:
    """The sha256 hex digest every record header carries."""
    return hashlib.sha256(payload).hexdigest()


def write_record(
    path: str,
    fmt: str,
    payload: bytes,
    extra_header: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Atomically writes ``payload`` under a digest-bearing ``fmt`` header;
    returns the header that was written."""
    header: Dict[str, object] = dict(extra_header or {})
    header["format"] = fmt
    header["digest"] = payload_digest(payload)
    directory = os.path.dirname(os.path.abspath(path))
    temp = path + ".tmp"
    with open(temp, "wb") as handle:
        handle.write(json.dumps(header, sort_keys=True).encode("ascii"))
        handle.write(b"\n")
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)
    # Persist the rename too, so the record survives a host crash.
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return header
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover - fsync on dirs unsupported
        pass
    finally:
        os.close(dir_fd)
    return header


def read_record(
    path: str,
    fmt: str,
    kind: str = "record",
    long_kind: Optional[str] = None,
) -> Tuple[Dict[str, object], bytes]:
    """Loads and verifies one record; returns ``(header, payload)``.

    ``kind`` and ``long_kind`` only flavor the error messages (e.g.
    ``"checkpoint"`` / ``"search checkpoint"``) so each consumer keeps its
    established diagnostics while sharing the verification logic.
    """
    long_kind = long_kind or kind
    try:
        with open(path, "rb") as handle:
            header_line = handle.readline()
            payload = handle.read()
    except OSError as exc:
        raise StorageError(
            f"cannot read {kind} {path!r}: {exc}", code="unreadable"
        )
    try:
        header = json.loads(header_line.decode("ascii"))
        if not isinstance(header, dict):
            raise ValueError("header is not an object")
    except (UnicodeDecodeError, ValueError):
        raise StorageError(
            f"{path!r} is not a {long_kind}", code="not_record"
        )
    found = header.get("format")
    if found != fmt:
        raise StorageError(
            f"{path!r} has {kind} format {found!r}, expected {fmt!r} "
            f"(old formats are not migrated)",
            code="format_mismatch",
        )
    digest = payload_digest(payload)
    if digest != header.get("digest"):
        raise StorageError(
            f"{path!r} is corrupt: payload digest mismatch "
            f"(expected {header.get('digest')}, got {digest})",
            code="digest_mismatch",
        )
    return header, payload


def pack_record(
    fmt: str,
    payload: bytes,
    extra_header: Optional[Dict[str, object]] = None,
) -> bytes:
    """The in-memory twin of :func:`write_record`: one header line plus
    the payload, as bytes. Used by the dist wire protocol, so a shard
    payload crossing a socket carries the same format name and sha256
    digest it would carry on disk."""
    header: Dict[str, object] = dict(extra_header or {})
    header["format"] = fmt
    header["digest"] = payload_digest(payload)
    return (
        json.dumps(header, sort_keys=True).encode("ascii") + b"\n" + payload
    )


def unpack_record(
    data: bytes,
    fmt: str,
    kind: str = "record",
    long_kind: Optional[str] = None,
    name: str = "<wire>",
) -> Tuple[Dict[str, object], bytes]:
    """Verifies one in-memory record; returns ``(header, payload)``.

    Raises the same coded :class:`StorageError` family as
    :func:`read_record`, with ``name`` standing in for the file path in
    diagnostics (e.g. the sending peer).
    """
    long_kind = long_kind or kind
    header_line, sep, payload = data.partition(b"\n")
    try:
        header = json.loads(header_line.decode("ascii"))
        if not isinstance(header, dict):
            raise ValueError("header is not an object")
    except (UnicodeDecodeError, ValueError):
        raise StorageError(
            f"{name!r} is not a {long_kind}", code="not_record"
        )
    if not sep:
        raise StorageError(
            f"{name!r} is truncated: no {kind} payload", code="not_record"
        )
    found = header.get("format")
    if found != fmt:
        raise StorageError(
            f"{name!r} has {kind} format {found!r}, expected {fmt!r} "
            f"(old formats are not migrated)",
            code="format_mismatch",
        )
    digest = payload_digest(payload)
    if digest != header.get("digest"):
        raise StorageError(
            f"{name!r} is corrupt: payload digest mismatch "
            f"(expected {header.get('digest')}, got {digest})",
            code="digest_mismatch",
        )
    return header, payload


def pack_pickle_record(
    fmt: str,
    obj: object,
    extra_header: Optional[Dict[str, object]] = None,
) -> bytes:
    """Pickles ``obj`` into one in-memory record."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return pack_record(fmt, payload, extra_header=extra_header)


def unpack_pickle_record(
    data: bytes,
    fmt: str,
    expected_type: Optional[Type] = None,
    kind: str = "record",
    long_kind: Optional[str] = None,
    name: str = "<wire>",
) -> Tuple[Dict[str, object], object]:
    """Verifies and unpickles one in-memory record."""
    header, payload = unpack_record(
        data, fmt, kind=kind, long_kind=long_kind, name=name
    )
    try:
        obj = pickle.loads(payload)
    except Exception as exc:
        raise StorageError(
            f"cannot unpickle {kind} {name!r}: {exc}", code="unpicklable"
        )
    if expected_type is not None and not isinstance(obj, expected_type):
        raise StorageError(
            f"{name!r} does not contain a {expected_type.__name__}",
            code="wrong_type",
        )
    return header, obj


def write_pickle_record(
    path: str,
    fmt: str,
    obj: object,
    extra_header: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Pickles ``obj`` and writes it as one atomic record."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return write_record(path, fmt, payload, extra_header=extra_header)


def read_pickle_record(
    path: str,
    fmt: str,
    expected_type: Optional[Type] = None,
    kind: str = "record",
    long_kind: Optional[str] = None,
) -> Tuple[Dict[str, object], object]:
    """Reads one record and unpickles its verified payload, optionally
    type-checking the result; returns ``(header, object)``."""
    header, payload = read_record(path, fmt, kind=kind, long_kind=long_kind)
    try:
        obj = pickle.loads(payload)
    except Exception as exc:
        raise StorageError(
            f"cannot unpickle {kind} {path!r}: {exc}", code="unpicklable"
        )
    if expected_type is not None and not isinstance(obj, expected_type):
        raise StorageError(
            f"{path!r} does not contain a {expected_type.__name__}",
            code="wrong_type",
        )
    return header, obj
