"""Parallel, memoized layout search — the batch evaluation engine behind
directed simulated annealing (:mod:`repro.schedule.anneal`).

The DSA loop (paper §4.5) spends essentially all of its wall-clock time
in *independent* candidate simulations and re-visits layouts constantly.
This package factors the evaluation out of the annealer into:

* an :class:`Evaluator` protocol with a serial backend and a
  process-pool backend (``workers=N`` is bit-identical to ``workers=1``
  by construction — see :mod:`repro.search.evaluator` for the batch
  contract that guarantees it),
* a :class:`SimCache` memoizing simulation results by exact layout
  fingerprint across iterations, restarts, and (when shared) whole
  synthesis runs, with hit/miss/eviction counters surfaced through
  :mod:`repro.obs` metrics and :class:`repro.schedule.anneal.AnnealResult`,
  and
* early cutoff: a candidate whose simulated clock passes the incumbent
  best stops immediately (``AnnealConfig.early_cutoff``).

The user-facing switchboard is :class:`repro.SynthesisOptions`
(``workers=``, ``sim_cache=``, ``cache=``, ``cache_entries=``).
"""

from .cache import CacheEntry, SimCache
from .evaluator import (
    BatchOutcome,
    Evaluator,
    INFEASIBLE_CYCLES,
    ParallelEvaluator,
    ScoredLayout,
    SerialEvaluator,
    make_evaluator,
)

__all__ = [
    "BatchOutcome",
    "CacheEntry",
    "Evaluator",
    "INFEASIBLE_CYCLES",
    "ParallelEvaluator",
    "ScoredLayout",
    "SerialEvaluator",
    "SimCache",
    "make_evaluator",
]
