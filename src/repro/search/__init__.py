"""Parallel, memoized layout search — the batch evaluation engine behind
directed simulated annealing (:mod:`repro.schedule.anneal`).

The DSA loop (paper §4.5) spends essentially all of its wall-clock time
in *independent* candidate simulations and re-visits layouts constantly.
This package factors the evaluation out of the annealer into:

* an :class:`Evaluator` protocol with a serial backend and a
  process-pool backend (``workers=N`` is bit-identical to ``workers=1``
  by construction — see :mod:`repro.search.evaluator` for the batch
  contract that guarantees it),
* a :class:`SimCache` memoizing simulation results by exact layout
  fingerprint across iterations, restarts, and (when shared) whole
  synthesis runs, with hit/miss/eviction counters surfaced through
  :mod:`repro.obs` metrics and :class:`repro.schedule.anneal.AnnealResult`,
  and
* early cutoff: a candidate whose simulated clock passes the incumbent
  best stops immediately (``AnnealConfig.early_cutoff``).

Because the search may run for hours on a real host, the package is also
fault-tolerant at the *host* level (distinct from the simulated-machine
resilience of :mod:`repro.resilience`):

* :mod:`repro.search.supervise` — deadlines from an EWMA of observed
  simulation times, bounded retries with deterministic backoff, pool
  teardown/rebuild on crashes and hangs, and graceful degradation to
  serial evaluation — all result-transparent (bit-identical to a
  fault-free run) because simulation is deterministic,
* :mod:`repro.search.checkpoint` — atomic, digest-verified
  checkpoint/resume of the full annealing state
  (``AnnealConfig.checkpoint_every``; resumed runs are bit-identical to
  uninterrupted ones), and
* :mod:`repro.search.hostchaos` — a seeded host-chaos harness injecting
  worker crashes and hangs and machine-checking the supervision
  invariants.

One level above worker processes, :mod:`repro.search.dist` distributes
whole *annealing restarts* across multiple hosts: a fault-tolerant
coordinator/worker protocol with leases, work-stealing, and frontier
checkpointing whose merged result is bit-identical to a single-host
serial run (its own chaos harness, :mod:`repro.search.dist.chaos`,
machine-checks that). The shared backoff/jitter arithmetic all three
retry layers use lives in :mod:`repro.search.retry`.

The user-facing switchboard is :class:`repro.SynthesisOptions`
(``workers=``, ``sim_cache=``, ``cache=``, ``cache_entries=``,
``supervise=``, ``checkpoint_path=``, ``resume=``, ``host_chaos=``).
"""

from .cache import CacheEntry, SimCache
from .checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointError,
    SearchCheckpoint,
    read_checkpoint,
    write_checkpoint,
)
from .evaluator import (
    BatchOutcome,
    EvaluationError,
    Evaluator,
    INFEASIBLE_CYCLES,
    ParallelEvaluator,
    ScoredLayout,
    SerialEvaluator,
    make_evaluator,
)
from .storage import (
    StorageError,
    read_pickle_record,
    read_record,
    write_pickle_record,
    write_record,
)
from .hostchaos import (
    DistChaosPlan,
    DistFault,
    HostChaosPlan,
    HostChaosReport,
    HostChaosRun,
    HostFault,
    run_host_chaos,
)
from .supervise import RetryPolicy, SupervisedEvaluator, SupervisionStats

__all__ = [
    "BatchOutcome",
    "CHECKPOINT_FORMAT",
    "CacheEntry",
    "CheckpointError",
    "DistChaosPlan",
    "DistFault",
    "EvaluationError",
    "Evaluator",
    "HostChaosPlan",
    "HostChaosReport",
    "HostChaosRun",
    "HostFault",
    "INFEASIBLE_CYCLES",
    "ParallelEvaluator",
    "RetryPolicy",
    "ScoredLayout",
    "SearchCheckpoint",
    "SerialEvaluator",
    "SimCache",
    "StorageError",
    "SupervisedEvaluator",
    "SupervisionStats",
    "make_evaluator",
    "read_checkpoint",
    "read_pickle_record",
    "read_record",
    "write_checkpoint",
    "write_pickle_record",
    "write_record",
]
