"""Shared capped-exponential-backoff and deterministic-jitter helpers.

Three layers retry failed work and must sleep between attempts without
thundering in lockstep, yet replay identically in tests:

* :class:`repro.search.supervise.RetryPolicy` — pool-dispatch retries,
  jittered into ``[1.0, 2.0)`` of the capped base so a rebuilt pool gets
  at least the full backoff;
* :class:`repro.serve.client.ClientRetryPolicy` — reconnect/re-send
  retries, jittered into ``[0.5, 1.0)`` so an army of clients spreads
  *below* the cap;
* the dist lease layer (:mod:`repro.search.dist`) — expired-lease
  re-dispatches, client-shaped.

They all share the same two primitives, kept here once:

* :func:`jitter` — a deterministic fraction in ``[0, 1)`` from the
  sha256 of ``"<key>:<round>"``. No RNG state, no wall clock: the same
  (key, round) always jitters the same, distinct keys and rounds spread
  apart.
* :func:`backoff_delay` — ``min(cap, base * 2**(failure-1))`` scaled
  into ``[low, high)`` of itself by :func:`jitter`.

Extracted from the two policies above with behavior pinned unchanged
(``tests/test_retry.py`` asserts the exact historical values).
"""

from __future__ import annotations

import hashlib


def jitter(key: object, round_index: int) -> float:
    """Deterministic jitter fraction in ``[0, 1)`` keyed by ``key`` (an
    op name, dispatch sequence, or shard id — anything with a stable
    ``str()``) and the 1-based failure round."""
    digest = hashlib.sha256(f"{key}:{round_index}".encode()).digest()
    return int.from_bytes(digest[:4], "big") / 2**32


def capped_backoff(base: float, cap: float, failure: int) -> float:
    """The un-jittered backoff before retrying after the ``failure``-th
    consecutive failure (1-based): ``min(cap, base * 2**(failure-1))``."""
    return min(cap, base * 2 ** (failure - 1))


def backoff_delay(
    base: float,
    cap: float,
    failure: int,
    key: object,
    low: float = 1.0,
    high: float = 2.0,
) -> float:
    """The jittered sleep before retry round ``failure``: the capped
    backoff scaled into ``[low, high)`` of itself by :func:`jitter`.

    ``low=1.0, high=2.0`` is the supervisor shape (never sleep less than
    the full backoff); ``low=0.5, high=1.0`` is the client shape (spread
    strictly below the cap).
    """
    return capped_backoff(base, cap, failure) * (
        low + (high - low) * jitter(key, failure)
    )
