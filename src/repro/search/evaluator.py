"""Batch layout evaluation: the engine behind the DSA loop.

The annealer's wall-clock cost is almost entirely independent candidate
simulations, so evaluation is exposed as a *batch* operation with two
interchangeable backends:

* :class:`SerialEvaluator` — simulates in order, in process; and
* :class:`ParallelEvaluator` — fans the batch out across a
  ``ProcessPoolExecutor``.

Both implement the :class:`Evaluator` protocol and obey the same batch
contract, which is what makes ``workers=N`` bit-identical to
``workers=1`` (test-enforced, like the fault/resilience/obs off-modes):

1. Layouts are fingerprinted and looked up in the (optional)
   :class:`~repro.search.cache.SimCache` **in input order**.
2. A cache miss consumes one unit of the simulation ``budget``; the first
   miss that would exceed the budget stops the batch — layouts from that
   position on are left unscored, exactly as the serial backend would
   have left them.
3. Misses are simulated under the batch's fixed ``cutoff`` (the incumbent
   best *entering* the batch — never updated mid-batch, so the outcome
   cannot depend on completion order or worker count).
4. Results are reduced **by input position**, not completion order.

Simulation itself is deterministic (the exit chooser is a deterministic
replay of the profile; all randomness lives in the annealer, in the
parent process), so the only sources of order dependence are the cache
and cutoff policies — which the contract pins down.
"""

from __future__ import annotations

import atexit
import weakref
from concurrent.futures import ProcessPoolExecutor
from time import perf_counter_ns as _perf_counter_ns
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

try:  # pragma: no cover - exercised only where Protocol is available
    from typing import Protocol
except ImportError:  # pragma: no cover - py3.7 fallback
    Protocol = object  # type: ignore[assignment]

from ..obs import prof
from ..schedule.layout import Layout
from ..schedule.mapping import layout_fingerprint
from ..schedule.simulator import DeltaMove, SimResult, SimSession
from .cache import CacheEntry, SimCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.api import CompiledProgram
    from ..runtime.profiler import ProfileData

#: Sentinel cycle count for simulations that did not finish — worse than
#: any real layout, so unfinishable candidates always rank last.
INFEASIBLE_CYCLES = 1 << 62

_P_CACHE_LOOKUP = prof.intern_phase("search.cache_lookup")
_P_DISPATCH = prof.intern_phase("search.dispatch")
_P_REDUCE = prof.intern_phase("search.reduce")
#: Worker-reported simulation time, attributed as a *non-exclusive*
#: child of ``search.dispatch`` — so the dispatch phase's self time is
#: the wall the compute does not explain: serialization + IPC + waiting.
_P_COMPUTE = prof.intern_phase("search.worker_compute")
_C_POOL_DISPATCHES = prof.intern_phase("search.pool_dispatches")


class EvaluationError(RuntimeError):
    """A candidate simulation failed inside a worker process.

    Carries the failing layout's position within the dispatched batch so
    a multi-hour search that dies on one candidate says *which* one.
    """

    def __init__(self, position: int, batch_size: int, cause: BaseException):
        # A _ChunkItemError already names the original exception type.
        cause_name = getattr(cause, "cause_type", type(cause).__name__)
        super().__init__(
            f"simulation of layout {position + 1}/{batch_size} in batch "
            f"failed: {cause_name}: {cause}"
        )
        self.position = position
        self.batch_size = batch_size


#: Live pool-backed evaluators, closed at interpreter exit so an exception
#: mid-batch can't leave orphaned worker processes hanging shutdown.
_LIVE_EVALUATORS: "weakref.WeakSet" = weakref.WeakSet()


@atexit.register
def _close_live_evaluators() -> None:  # pragma: no cover - interpreter exit
    for evaluator in list(_LIVE_EVALUATORS):
        try:
            evaluator.close()
        except Exception:
            pass


@dataclass
class ScoredLayout:
    """One scored candidate of a batch."""

    layout: Layout
    cycles: int
    result: SimResult
    from_cache: bool = False


@dataclass
class BatchOutcome:
    """The scored prefix of one batch, plus its accounting."""

    scored: List[ScoredLayout] = field(default_factory=list)
    #: real simulations performed (the unit ``max_evaluations`` budgets)
    simulations: int = 0
    cache_hits: int = 0
    #: simulations stopped early by the cutoff
    pruned: int = 0


class Evaluator(Protocol):
    """Anything that can score a batch of candidate layouts."""

    def evaluate(
        self,
        layouts: Sequence[Layout],
        cutoff: Optional[int] = None,
        budget: Optional[int] = None,
        charge_hits: bool = False,
        deltas: Optional[Sequence[Optional[DeltaMove]]] = None,
    ) -> BatchOutcome:
        """Scores ``layouts`` under the batch contract above."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Releases backend resources (worker processes)."""
        ...  # pragma: no cover - protocol

    def __enter__(self) -> "Evaluator":
        ...  # pragma: no cover - protocol

    def __exit__(self, *exc_info) -> None:
        ...  # pragma: no cover - protocol


def _score(result: SimResult) -> int:
    return result.total_cycles if result.finished else INFEASIBLE_CYCLES


class _EvaluatorBase:
    """Cache bookkeeping and batch planning shared by both backends."""

    def __init__(
        self,
        compiled: "CompiledProgram",
        profile: "ProfileData",
        hints: Optional[Dict[str, str]] = None,
        core_speeds: Optional[Dict[int, float]] = None,
        cache: Optional[SimCache] = None,
        delta: bool = True,
    ):
        self.compiled = compiled
        self.profile = profile
        self.hints = hints
        self.core_speeds = core_speeds
        self.cache = cache
        self.delta = delta
        # In-process simulation session: shares per-program tables across
        # the whole search and (with delta=True) resumes candidates from
        # their parent's snapshots. Results are identical either way; the
        # cache's session store makes the warm state checkpointable.
        self.session = SimSession(
            compiled,
            profile,
            hints=hints,
            core_speeds=core_speeds,
            delta=delta,
            store=cache.sessions if cache is not None else None,
        )

    def fingerprint(self, layout: Layout) -> str:
        return layout_fingerprint(layout, self.core_speeds)

    def _plan(
        self,
        layouts: Sequence[Layout],
        cutoff: Optional[int],
        budget: Optional[int],
        charge_hits: bool = False,
    ) -> Tuple[List[Tuple[int, Layout, Optional[CacheEntry], str]], int]:
        """Walks the batch in order, resolving cache hits and selecting the
        misses to simulate. Returns ``(plan, hits)`` where each plan item
        is ``(position, layout, entry-or-None, fingerprint)``; the plan
        stops at the first miss the budget cannot cover.

        With ``charge_hits`` every *request* consumes one budget unit, so
        the plan is exactly the first ``budget`` layouts regardless of
        what the cache holds — the scored prefix (and therefore the whole
        search trajectory) is identical against a cold or a warm cache.
        Layouts past the budget are not even looked up, so the cache
        counters stay cache-state-comparable too.
        """
        plan: List[Tuple[int, Layout, Optional[CacheEntry], str]] = []
        hits = 0
        misses = 0
        for position, layout in enumerate(layouts):
            if charge_hits and budget is not None and len(plan) >= budget:
                break
            fingerprint = self.fingerprint(layout)
            entry = (
                self.cache.get(fingerprint, cutoff)
                if self.cache is not None
                else None
            )
            if entry is None:
                if not charge_hits and budget is not None and misses >= budget:
                    break
                misses += 1
            else:
                hits += 1
            plan.append((position, layout, entry, fingerprint))
        return plan, hits

    def _record(
        self, fingerprint: str, result: SimResult
    ) -> CacheEntry:
        entry = CacheEntry(
            cycles=_score(result), result=result, pruned=result.pruned
        )
        if self.cache is not None:
            self.cache.put(fingerprint, entry)
        return entry

    def evaluate(
        self,
        layouts: Sequence[Layout],
        cutoff: Optional[int] = None,
        budget: Optional[int] = None,
        charge_hits: bool = False,
        deltas: Optional[Sequence[Optional[DeltaMove]]] = None,
    ) -> BatchOutcome:
        with prof.phase(_P_CACHE_LOOKUP):
            plan, hits = self._plan(layouts, cutoff, budget, charge_hits)
        outcome = BatchOutcome(cache_hits=hits)
        miss_indices = [
            index for index, item in enumerate(plan) if item[2] is None
        ]
        # ``deltas`` aligns with the *input* batch; re-align the miss
        # subset by plan position. Hints are pure cost advice — a bad or
        # missing hint changes nothing but wall clock.
        if deltas is None:
            miss_deltas: List[Optional[DeltaMove]] = [None] * len(miss_indices)
        else:
            miss_deltas = [deltas[plan[index][0]] for index in miss_indices]
        with prof.phase(_P_DISPATCH):
            results = self._simulate(
                [plan[index][1] for index in miss_indices], cutoff,
                miss_deltas,
            )
        with prof.phase(_P_REDUCE):
            for index, result in zip(miss_indices, results):
                outcome.simulations += 1
                if result.pruned:
                    outcome.pruned += 1
                position, layout, _, fingerprint = plan[index]
                plan[index] = (
                    position, layout, self._record(fingerprint, result),
                    fingerprint,
                )
            simulated = set(miss_indices)
            for index, (_, layout, entry, _) in enumerate(plan):
                assert entry is not None
                outcome.scored.append(
                    ScoredLayout(
                        layout=layout,
                        cycles=entry.cycles,
                        result=entry.result,
                        from_cache=index not in simulated,
                    )
                )
        return outcome

    # -- backend hooks -------------------------------------------------------

    def _simulate(
        self,
        layouts: Sequence[Layout],
        cutoff: Optional[int],
        deltas: Optional[Sequence[Optional[DeltaMove]]] = None,
    ) -> List[SimResult]:
        raise NotImplementedError

    def close(self) -> None:
        """Nothing to release by default."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialEvaluator(_EvaluatorBase):
    """In-process, in-order evaluation — the reference backend."""

    def _simulate(
        self,
        layouts: Sequence[Layout],
        cutoff: Optional[int],
        deltas: Optional[Sequence[Optional[DeltaMove]]] = None,
    ) -> List[SimResult]:
        session = self.session
        if deltas is None:
            deltas = [None] * len(layouts)
        return [
            session.simulate(layout, cutoff=cutoff, delta=delta)
            for layout, delta in zip(layouts, deltas)
        ]


# -- process-pool backend ------------------------------------------------------


def _shutdown_executor(executor: ProcessPoolExecutor) -> None:
    """Shuts a pool down without stranding queued work.

    ``cancel_futures`` (py >= 3.9) drops everything still queued so the
    shutdown cannot deadlock behind an abandoned batch; on older runtimes
    the plain shutdown is the best available.
    """
    try:
        executor.shutdown(wait=True, cancel_futures=True)
    except TypeError:  # pragma: no cover - py < 3.9 fallback
        executor.shutdown(wait=True)

#: Per-worker simulation context, installed by the pool initializer.
_WORKER_CONTEXT: Dict[str, object] = {}


class _ChunkItemError(Exception):
    """Wraps a simulation failure inside a chunk with its item offset, so
    the parent can report the exact batch position."""

    def __init__(self, offset: int, cause_type: str, cause_message: str):
        super().__init__(offset, cause_type, cause_message)
        self.offset = offset
        self.cause_type = cause_type
        self.cause_message = cause_message

    def __str__(self) -> str:
        return self.cause_message


def _init_worker(compiled, profile, hints, core_speeds, delta=True) -> None:
    _WORKER_CONTEXT["compiled"] = compiled
    _WORKER_CONTEXT["profile"] = profile
    _WORKER_CONTEXT["hints"] = hints
    _WORKER_CONTEXT["core_speeds"] = core_speeds
    # Each worker keeps its own long-lived session: program tables are
    # built once per process, and delta hints resume against whatever
    # parents this worker happens to have simulated. Hit patterns vary by
    # scheduling; results cannot (delta resumes are exact).
    _WORKER_CONTEXT["session"] = SimSession(
        compiled,
        profile,
        hints=hints,
        core_speeds=core_speeds,
        delta=delta,
    )
    # A forked worker inherits the parent's installed profiler; anything
    # it would record dies with the process, so drop it — the parent
    # attributes worker compute from the timed entry point instead.
    prof.uninstall()


def _worker_session() -> SimSession:
    session = _WORKER_CONTEXT.get("session")
    if session is None:  # pragma: no cover - initializer always ran
        session = SimSession(
            _WORKER_CONTEXT["compiled"],
            _WORKER_CONTEXT["profile"],
            hints=_WORKER_CONTEXT["hints"],
            core_speeds=_WORKER_CONTEXT["core_speeds"],
        )
        _WORKER_CONTEXT["session"] = session
    return session


def _simulate_in_worker(layout: Layout, cutoff: Optional[int]) -> SimResult:
    return _worker_session().simulate(layout, cutoff=cutoff)


def _simulate_chunk(
    items: Sequence[Tuple[Layout, Optional[DeltaMove]]],
    cutoff: Optional[int],
) -> List[SimResult]:
    """Simulates one chunk of (layout, delta-hint) pairs in order.

    Chunking is what amortizes pool IPC across a wave: one submit ships
    several layouts and returns several results, so the per-dispatch
    pickling overhead is paid once per chunk instead of once per
    candidate."""
    session = _worker_session()
    results: List[SimResult] = []
    for offset, (layout, delta) in enumerate(items):
        try:
            results.append(
                session.simulate(layout, cutoff=cutoff, delta=delta)
            )
        except Exception as exc:
            raise _ChunkItemError(
                offset, type(exc).__name__, str(exc)
            ) from exc
    return results


def _simulate_chunk_timed(
    items: Sequence[Tuple[Layout, Optional[DeltaMove]]],
    cutoff: Optional[int],
) -> Tuple[int, List[SimResult]]:
    """The chunk entry used when a profiler is active in the parent:
    returns ``(compute_ns, results)`` so the parent can split its dispatch
    wall into worker compute vs IPC overhead. The result objects are
    untouched — cache entries and checkpoints never see the timing."""
    started = _perf_counter_ns()
    results = _simulate_chunk(items, cutoff)
    return _perf_counter_ns() - started, results


def _chunk_bounds(total: int, workers: int) -> List[Tuple[int, int]]:
    """Splits ``total`` items into contiguous chunks: about two chunks per
    worker (so a straggling chunk can overlap with the rest of the wave),
    capped at 16 items so one chunk never serializes a whole huge batch."""
    if total <= 0:
        return []
    size = -(-total // (workers * 2))
    size = max(1, min(16, size))
    return [
        (start, min(start + size, total)) for start in range(0, total, size)
    ]


class ParallelEvaluator(_EvaluatorBase):
    """Fans batch misses out across worker processes.

    The compiled program and profile ship to each worker exactly once (via
    the pool initializer); per-batch traffic is just layouts out and
    ``SimResult``s back. Futures are collected in submission order, so the
    reduction is independent of completion order and the outcome is
    bit-identical to :class:`SerialEvaluator`.
    """

    def __init__(
        self,
        compiled: "CompiledProgram",
        profile: "ProfileData",
        hints: Optional[Dict[str, str]] = None,
        core_speeds: Optional[Dict[int, float]] = None,
        cache: Optional[SimCache] = None,
        workers: int = 2,
        delta: bool = True,
    ):
        super().__init__(
            compiled, profile, hints=hints, core_speeds=core_speeds,
            cache=cache, delta=delta,
        )
        if workers < 2:
            raise ValueError(
                "ParallelEvaluator needs workers >= 2; use SerialEvaluator"
            )
        self.workers = workers
        self._executor: Optional[ProcessPoolExecutor] = None
        _LIVE_EVALUATORS.add(self)

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(
                    self.compiled,
                    self.profile,
                    self.hints,
                    self.core_speeds,
                    self.delta,
                ),
            )
        return self._executor

    def _simulate(
        self,
        layouts: Sequence[Layout],
        cutoff: Optional[int],
        deltas: Optional[Sequence[Optional[DeltaMove]]] = None,
    ) -> List[SimResult]:
        if not layouts:
            return []
        if deltas is None:
            deltas = [None] * len(layouts)
        if len(layouts) == 1:
            # Not worth a round trip; the serial path is bit-identical.
            return SerialEvaluator._simulate(self, layouts, cutoff, deltas)
        pool = self._pool()
        profiler = prof.active()
        worker = _simulate_chunk if profiler is None else _simulate_chunk_timed
        items = list(zip(layouts, deltas))
        chunks = _chunk_bounds(len(items), self.workers)
        futures = [
            pool.submit(worker, items[start:stop], cutoff)
            for start, stop in chunks
        ]
        results: List[SimResult] = []
        compute_ns = 0
        for (start, _), future in zip(chunks, futures):
            try:
                outcome = future.result()
            except _ChunkItemError as exc:
                raise EvaluationError(
                    start + exc.offset, len(items), exc
                ) from exc
            except Exception as exc:
                raise EvaluationError(start, len(items), exc) from exc
            if profiler is None:
                results.extend(outcome)
            else:
                elapsed, chunk_results = outcome
                compute_ns += elapsed
                results.extend(chunk_results)
        if profiler is not None:
            # Non-exclusive: worker compute overlaps the parent's
            # ``search.dispatch`` wall (and, with N workers, can exceed
            # it), so it must not be subtracted from dispatch self time —
            # dispatch self is exactly the IPC + wait overhead.
            profiler.add_time(
                _P_COMPUTE, compute_ns, count=len(results), exclusive=False
            )
            profiler.add_count(_C_POOL_DISPATCHES)
        return results

    def close(self) -> None:
        executor, self._executor = self._executor, None
        if executor is not None:
            _shutdown_executor(executor)

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


def make_evaluator(
    compiled: "CompiledProgram",
    profile: "ProfileData",
    hints: Optional[Dict[str, str]] = None,
    core_speeds: Optional[Dict[int, float]] = None,
    cache: Optional[SimCache] = None,
    workers: int = 1,
    supervise: bool = False,
    policy=None,
    chaos=None,
    delta: bool = True,
) -> Evaluator:
    """Builds the right backend for ``workers``.

    With ``supervise=True`` (or an explicit retry ``policy`` / ``chaos``
    plan) a multi-worker evaluator is wrapped in host-fault supervision:
    deadlines, bounded retries, pool rebuilds, and serial degradation —
    see :mod:`repro.search.supervise`. Serial evaluation has no worker
    processes to supervise, so ``workers=1`` ignores these knobs.
    ``delta=False`` disables incremental (delta) re-simulation; results
    are bit-identical either way.
    """
    if workers > 1:
        if supervise or policy is not None or chaos is not None:
            from .supervise import SupervisedEvaluator

            return SupervisedEvaluator(
                compiled,
                profile,
                hints=hints,
                core_speeds=core_speeds,
                cache=cache,
                workers=workers,
                policy=policy,
                chaos=chaos,
                delta=delta,
            )
        return ParallelEvaluator(
            compiled,
            profile,
            hints=hints,
            core_speeds=core_speeds,
            cache=cache,
            workers=workers,
            delta=delta,
        )
    return SerialEvaluator(
        compiled, profile, hints=hints, core_speeds=core_speeds, cache=cache,
        delta=delta,
    )
