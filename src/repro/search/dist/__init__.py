"""Distributed multi-host layout search.

The checkpoint substrate (:mod:`repro.search.storage`) promoted from
crash recovery to a distribution protocol: a :class:`DistCoordinator`
decomposes a synthesis job into independent shards (annealing restarts),
holds every dispatched shard under an EWMA lease, steals work from
stragglers, and merges results in shard-id order so the incumbent
trajectory — and the final layout — is bit-identical to a single-host
serial run of the same shard list, no matter how many workers join,
crash, hang, or disconnect. See ``docs/DISTRIBUTED.md``.
"""

from .shards import (
    DistResult,
    JobContext,
    ShardResult,
    ShardSpec,
    describe_dist_result,
    execute_shard,
    make_restart_shards,
    merge_shard_results,
    result_key,
    run_serial_baseline,
)
from .messages import DIST_PROTOCOL, DistProtocolError
from .coordinator import (
    DistCoordinator,
    DistError,
    DistStats,
    LeasePolicy,
    run_dist_search,
)
from .worker import WorkerStats, run_dist_worker

__all__ = [
    "DIST_PROTOCOL",
    "DistCoordinator",
    "DistError",
    "DistProtocolError",
    "DistResult",
    "DistStats",
    "JobContext",
    "LeasePolicy",
    "ShardResult",
    "ShardSpec",
    "WorkerStats",
    "describe_dist_result",
    "execute_shard",
    "make_restart_shards",
    "merge_shard_results",
    "result_key",
    "run_dist_search",
    "run_dist_worker",
    "run_serial_baseline",
]
