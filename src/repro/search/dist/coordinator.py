"""The fault-tolerant shard coordinator.

One :class:`DistCoordinator` owns a listening socket, a shard queue, and
the lease table. Stateless workers (:mod:`repro.search.dist.worker`)
connect, receive the job context once, then pull shards one at a time.
Robustness is structural, not bolted on:

* **Leases** — every remote dispatch carries a wall-clock deadline,
  ``max(timeout_floor, ewma × timeout_mult)`` over observed shard times
  (the :class:`~repro.search.supervise.RetryPolicy` shape, one level
  up). A monitor thread re-queues expired shards with capped backoff and
  deterministic sha256 jitter (:mod:`repro.search.retry`).
* **Work-stealing** — an expired shard is dispatched *again* while the
  original worker keeps running; whichever result arrives first wins,
  the loser is discarded by dispatch sequence id
  (:attr:`DistStats.duplicates_discarded`), and since every execution of
  a shard is bit-identical the race cannot change the merged outcome.
* **Failure taxonomy** — a connection lost mid-shard is a **crash**, a
  connection lost while idle (or a garbled line) is a **disconnect**,
  and a lease breach on a live connection is a **hang**; each is counted
  separately and each costs only a retry.
* **Graceful degradation** — shards that exhaust their dispatch retries,
  or sit ready while the worker set is empty past a grace period, are
  executed locally in the coordinator (the same
  :func:`~repro.search.dist.shards.execute_shard`), so the job
  terminates with zero workers exactly as it would have with ten.
* **Frontier checkpointing** — every completed shard is folded into an
  atomic ``repro.search/dist-frontier-v1`` record
  (:mod:`repro.search.storage`), so a SIGKILLed coordinator restarted
  with ``resume=True`` re-runs only the incomplete shards and merges to
  a bit-identical result.

Exactly-once accounting: every dispatch (remote send or local
execution) reaches exactly one terminal state — ``win``, ``duplicate``,
``failure``, or ``abandoned`` — and
:meth:`DistStats.check_accounting` verifies the sum. The chaos harness
(:mod:`repro.search.dist.chaos`) machine-checks it per plan.
"""

from __future__ import annotations

import heapq
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...lang.errors import BambooError
from ...obs import prof
from .. import retry
from ..storage import StorageError, read_pickle_record, write_pickle_record
from .messages import (
    FRONTIER_FORMAT,
    JOB_FORMAT,
    RESULT_FORMAT,
    SHARD_FORMAT,
    DistProtocolError,
    LineReader,
    check_hello,
    pack_payload,
    recv_message,
    send_message,
    unpack_payload,
)
from .shards import (
    DistResult,
    JobContext,
    ShardResult,
    ShardSpec,
    execute_shard,
    job_digest,
    merge_shard_results,
)

_P_COORDINATE = prof.intern_phase("dist.coordinate")
_P_MERGE = prof.intern_phase("dist.merge")


class DistError(BambooError):
    """A distributed-search refusal (bad resume, bad configuration)."""


@dataclass(frozen=True)
class LeasePolicy:
    """Lease and re-dispatch knobs, mirroring
    :class:`repro.search.supervise.RetryPolicy` one level up: the
    supervisor leases pool dispatches, this leases whole shards."""

    #: lease deadline = EWMA of observed shard seconds × this
    timeout_mult: float = 8.0
    #: minimum lease in seconds (cold workers pay process spawn +
    #: context shipping + group-graph build on their first shard)
    timeout_floor: float = 10.0
    #: EWMA smoothing factor for observed shard wall-times
    ewma_alpha: float = 0.2
    #: remote dispatch attempts per shard before it becomes local-only
    max_retries: int = 5
    #: base backoff (seconds) before re-dispatching a failed/stolen
    #: shard; doubles per attempt, sha256-jittered
    backoff_base: float = 0.05
    #: backoff ceiling in seconds
    backoff_cap: float = 2.0

    def validate(self) -> None:
        if self.timeout_mult <= 0 or self.timeout_floor <= 0:
            raise ValueError("lease deadline parameters must be positive")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff parameters must be non-negative")

    def deadline_seconds(self, ewma: Optional[float]) -> float:
        if ewma is None:
            return self.timeout_floor
        return max(self.timeout_floor, ewma * self.timeout_mult)


@dataclass
class DistStats:
    """What the coordinator did — counters only, no wall clocks, so the
    chaos harness can check exact identities over them."""

    workers_joined: int = 0
    workers_left: int = 0
    #: remote shard sends (every dispatch, steals and retries included)
    dispatches: int = 0
    #: shards executed in the coordinator process
    local_executions: int = 0
    #: distinct shards completed (first result each)
    shards_completed: int = 0
    #: losing results of steal races, discarded by sequence id
    duplicates_discarded: int = 0
    #: dispatches that died before producing a result
    dispatch_failures: int = 0
    #: dispatches still outstanding when the job finished
    abandoned: int = 0
    #: lease deadlines breached (once per dispatch)
    lease_expiries: int = 0
    #: re-dispatches caused by a lease expiry
    steals: int = 0
    #: re-dispatches caused by a dispatch failure
    retries: int = 0
    worker_crashes: int = 0
    worker_disconnects: int = 0
    worker_hangs: int = 0
    garbled_messages: int = 0
    #: shards that exhausted remote retries and went local-only
    local_only_shards: int = 0
    #: chaos accounting (zero outside harness runs)
    injected_crashes: int = 0
    injected_hangs: int = 0
    forced_lease_expiries: int = 0
    #: a shard ran locally while the worker set was empty
    degraded: bool = False
    frontier_checkpoints: int = 0
    resumed_shards: int = 0

    def snapshot(self) -> Dict[str, object]:
        return {
            "workers_joined": self.workers_joined,
            "workers_left": self.workers_left,
            "dispatches": self.dispatches,
            "local_executions": self.local_executions,
            "shards_completed": self.shards_completed,
            "duplicates_discarded": self.duplicates_discarded,
            "dispatch_failures": self.dispatch_failures,
            "abandoned": self.abandoned,
            "lease_expiries": self.lease_expiries,
            "steals": self.steals,
            "retries": self.retries,
            "worker_crashes": self.worker_crashes,
            "worker_disconnects": self.worker_disconnects,
            "worker_hangs": self.worker_hangs,
            "garbled_messages": self.garbled_messages,
            "local_only_shards": self.local_only_shards,
            "injected_crashes": self.injected_crashes,
            "injected_hangs": self.injected_hangs,
            "forced_lease_expiries": self.forced_lease_expiries,
            "degraded": self.degraded,
            "frontier_checkpoints": self.frontier_checkpoints,
            "resumed_shards": self.resumed_shards,
        }

    def check_accounting(self) -> List[str]:
        """The exactly-once identity; returns violation strings."""
        violations: List[str] = []
        total = self.dispatches + self.local_executions
        accounted = (
            self.shards_completed
            - self.resumed_shards
            + self.duplicates_discarded
            + self.dispatch_failures
            + self.abandoned
        )
        if total != accounted:
            violations.append(
                f"dispatch accounting broken: {total} dispatched != "
                f"{accounted} (completed - resumed + duplicates + "
                f"failures + abandoned)"
            )
        if self.steals > self.lease_expiries:
            violations.append(
                f"{self.steals} steals exceed "
                f"{self.lease_expiries} lease expiries"
            )
        return violations


@dataclass
class _Dispatch:
    seq: int
    shard_id: int
    worker: str
    started: float
    deadline: float
    expired: bool = False
    done: bool = False


class DistCoordinator:
    """Coordinates one job across any number of (possibly zero) workers."""

    def __init__(
        self,
        context: JobContext,
        shards: List[ShardSpec],
        lease: Optional[LeasePolicy] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        registry=None,
        checkpoint_path: Optional[str] = None,
        resume: bool = False,
        checkpoint_every: int = 1,
        #: seconds a ready shard may sit undispatched (or the worker set
        #: may sit empty) before the coordinator runs it locally
        degrade_after: float = 10.0,
        #: workers the caller intends to attach; 0 means run everything
        #: locally without waiting for anyone
        expect_workers: int = 0,
        chaos_plan=None,
        announce=None,
    ):
        if not shards:
            raise DistError("a dist job needs at least one shard")
        self.context = context
        self.shards = {spec.shard_id: spec for spec in shards}
        if sorted(self.shards) != list(range(len(shards))):
            raise DistError("shard ids must be 0..n-1, unique")
        self.lease = lease or LeasePolicy()
        self.lease.validate()
        self.host = host
        self.port = port
        self.registry = registry
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = max(1, checkpoint_every)
        self.degrade_after = degrade_after
        self.expect_workers = expect_workers
        self.chaos_plan = chaos_plan
        self.announce = announce
        self.stats = DistStats()
        self.job_digest = job_digest(context, shards)

        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        #: (ready_time, tiebreak, shard_id) — shards awaiting dispatch
        self._heap: List[Tuple[float, int, int]] = []
        self._heap_seq = 0
        self._enqueued: set = set()
        self._local_queue: List[int] = []
        self._attempts: Dict[int, int] = {}
        self._outstanding: Dict[int, _Dispatch] = {}
        self._completed: Dict[int, ShardResult] = {}
        self._ewma: Optional[float] = None
        self._dispatch_seq = 0
        self._done = threading.Event()
        self._stopping = False
        self._last_activity = time.monotonic()
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._conns: List[socket.socket] = []
        self._workers_connected = 0
        #: the job context, packed once and shipped to every worker
        self._job_payload = pack_payload(
            JOB_FORMAT,
            {"context": context, "shard_count": len(shards)},
        )

        if resume:
            self._load_frontier()
        with self._lock:
            for shard_id in range(len(shards)):
                if shard_id not in self._completed:
                    self._push(shard_id, 0.0)
            if not self._heap:
                self._done.set()

    # -- metrics -------------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        if self.registry is not None:
            self.registry.counter(f"dist_{name}").inc(amount)

    # -- frontier checkpoint -------------------------------------------------

    def _load_frontier(self) -> None:
        import os

        if self.checkpoint_path is None:
            raise DistError("resume requested without a checkpoint path")
        if not os.path.exists(self.checkpoint_path):
            return  # nothing to resume from; a fresh run is correct
        try:
            _, payload = read_pickle_record(
                self.checkpoint_path,
                FRONTIER_FORMAT,
                expected_type=dict,
                kind="dist frontier",
                long_kind="dist frontier checkpoint",
            )
        except StorageError as exc:
            raise DistError(f"cannot resume: {exc}")
        if payload.get("job") != self.job_digest:
            raise DistError(
                "cannot resume: frontier checkpoint belongs to a different "
                f"job (checkpoint {str(payload.get('job'))[:12]}…, "
                f"this job {self.job_digest[:12]}…)"
            )
        for shard_id, result in payload.get("completed", {}).items():
            if shard_id in self.shards:
                self._completed[shard_id] = result
                self.stats.shards_completed += 1
                self.stats.resumed_shards += 1
        self._count("resumed_shards", self.stats.resumed_shards)

    def _write_frontier(self) -> None:
        """Called with the lock held, after folding in a new winner."""
        if self.checkpoint_path is None:
            return
        completed = len(self._completed)
        due = (
            completed == len(self.shards)
            or (completed % self.checkpoint_every) == 0
        )
        if not due:
            return
        write_pickle_record(
            self.checkpoint_path,
            FRONTIER_FORMAT,
            {"job": self.job_digest, "completed": dict(self._completed)},
            extra_header={
                "completed": completed,
                "shards": len(self.shards),
            },
        )
        self.stats.frontier_checkpoints += 1
        self._count("frontier_checkpoints")

    # -- shard queue ---------------------------------------------------------

    def _push(self, shard_id: int, ready_time: float) -> None:
        """Lock held. Queues a shard unless it is already queued/done."""
        if shard_id in self._completed or shard_id in self._enqueued:
            return
        if self._attempts.get(shard_id, 0) > self.lease.max_retries:
            if shard_id not in self._local_queue:
                self._local_queue.append(shard_id)
                self.stats.local_only_shards += 1
                self._count("local_only_shards")
            return
        self._heap_seq += 1
        heapq.heappush(self._heap, (ready_time, self._heap_seq, shard_id))
        self._enqueued.add(shard_id)
        self._cond.notify_all()

    def _pop_ready(self) -> Optional[int]:
        """Lock held. The next dispatchable shard, or None."""
        now = time.monotonic()
        while self._heap:
            ready, _, shard_id = self._heap[0]
            if shard_id in self._completed:
                heapq.heappop(self._heap)
                self._enqueued.discard(shard_id)
                continue
            if ready > now:
                return None
            heapq.heappop(self._heap)
            self._enqueued.discard(shard_id)
            return shard_id
        return None

    def _requeue(self, shard_id: int, reason: str) -> None:
        """Lock held. Re-dispatch with capped backoff + sha256 jitter."""
        if shard_id in self._completed:
            return
        attempt = self._attempts.get(shard_id, 0) + 1
        self._attempts[shard_id] = attempt
        delay = retry.backoff_delay(
            self.lease.backoff_base,
            self.lease.backoff_cap,
            min(attempt, 16),
            f"shard{shard_id}",
            low=0.5,
            high=1.0,
        )
        self._push(shard_id, time.monotonic() + delay)
        if reason == "steal":
            self.stats.steals += 1
            self._count("steals")
        else:
            self.stats.retries += 1
            self._count("retries")

    # -- results -------------------------------------------------------------

    def _submit_result(
        self,
        shard_id: int,
        result: ShardResult,
        seq: Optional[int] = None,
        remote: bool = False,
    ) -> bool:
        """Folds one result in; returns True for the winner."""
        with self._lock:
            dispatch = (
                self._outstanding.pop(seq, None) if seq is not None else None
            )
            if dispatch is not None:
                dispatch.done = True
            if shard_id in self._completed:
                self.stats.duplicates_discarded += 1
                self._count("duplicates_discarded")
                return False
            self._completed[shard_id] = result
            self.stats.shards_completed += 1
            self._count("shards_completed")
            if remote:
                # Only remote results refresh the degrade clock: a local
                # execution proving the workers idle must not defer the
                # next one by another grace period.
                self._last_activity = time.monotonic()
                if dispatch is not None:
                    elapsed = time.monotonic() - dispatch.started
                    alpha = self.lease.ewma_alpha
                    self._ewma = (
                        elapsed
                        if self._ewma is None
                        else (1 - alpha) * self._ewma + alpha * elapsed
                    )
            self._write_frontier()
            if len(self._completed) == len(self.shards):
                self._done.set()
                self._cond.notify_all()
            return True

    def _dispatch_failed(self, seq: int, kind: str) -> None:
        """A dispatch died before producing a result; classify + retry."""
        with self._lock:
            dispatch = self._outstanding.pop(seq, None)
            if dispatch is None or dispatch.done:
                return
            dispatch.done = True
            self.stats.dispatch_failures += 1
            self._count("dispatch_failures")
            if kind == "crash":
                self.stats.worker_crashes += 1
                self._count("worker_crashes")
            elif kind == "garbled":
                self.stats.garbled_messages += 1
                self._count("garbled_messages")
            else:
                self.stats.worker_disconnects += 1
                self._count("worker_disconnects")
            self._requeue(dispatch.shard_id, "retry")

    # -- lease monitor -------------------------------------------------------

    def _tick_leases(self) -> None:
        now = time.monotonic()
        with self._lock:
            for dispatch in list(self._outstanding.values()):
                if dispatch.done or dispatch.expired:
                    continue
                if now < dispatch.deadline:
                    continue
                dispatch.expired = True
                self.stats.lease_expiries += 1
                self.stats.worker_hangs += 1
                self._count("lease_expiries")
                self._count("worker_hangs")
                if dispatch.shard_id not in self._completed:
                    self._requeue(dispatch.shard_id, "steal")

    def _monitor(self) -> None:
        while not self._done.is_set() and not self._stopping:
            self._tick_leases()
            time.sleep(0.05)

    # -- worker connections --------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Binds the listener and starts the accept + monitor threads."""
        if self._listener is not None:
            return self.host, self.port
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        self.host, self.port = listener.getsockname()[:2]
        listener.settimeout(0.2)
        self._listener = listener
        if self.announce is not None:
            print(
                f"dist coordinator listening on {self.host}:{self.port}",
                file=self.announce,
                flush=True,
            )
        for target in (self._accept_loop, self._monitor):
            thread = threading.Thread(target=target, daemon=True)
            thread.start()
            self._threads.append(thread)
        self._last_activity = time.monotonic()
        return self.host, self.port

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping:
            try:
                conn, addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed
            self._conns.append(conn)
            thread = threading.Thread(
                target=self._serve_worker, args=(conn, addr), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _next_chaos(
        self, seq: int
    ) -> Tuple[Optional[Dict[str, object]], bool]:
        """Lock held. The chaos token for dispatch ``seq`` (shipped to
        the worker) and whether the lease should be force-expired
        (coordinator-side). Counts what it injects."""
        if self.chaos_plan is None:
            return None, False
        fault = self.chaos_plan.dispatch_fault(seq)
        if fault is None:
            return None, False
        kind, param = fault
        if kind == "crash_worker":
            self.stats.injected_crashes += 1
            self._count("injected_crashes")
            return {"kind": "crash"}, False
        if kind == "hang_worker":
            self.stats.injected_hangs += 1
            self._count("injected_hangs")
            return {"kind": "hang", "seconds": param}, False
        if kind == "expire_lease":
            return None, True
        return None, False

    def _serve_worker(self, conn: socket.socket, addr) -> None:
        name = f"{addr[0]}:{addr[1]}"
        reader = LineReader(conn)
        current_seq: Optional[int] = None
        joined = False
        try:
            conn.settimeout(self.lease.timeout_floor)
            hello = recv_message(reader, name)
            if hello is None:
                return
            worker_name, _pid = check_hello(hello)
            name = f"{worker_name}@{name}"
            joined = True
            with self._lock:
                self._workers_connected += 1
                self.stats.workers_joined += 1
                self._count("workers_joined")
                self._last_activity = time.monotonic()
            send_message(
                conn, {"op": "job", "payload": self._job_payload}
            )
            while not self._done.is_set() and not self._stopping:
                shard_id = self._wait_for_shard()
                if shard_id is None:
                    continue
                current_seq = self._dispatch_one(conn, name, shard_id)
                if current_seq is None:
                    return  # send failed; shard already requeued
                finished = self._await_result(conn, reader, name, current_seq)
                if not finished:
                    return  # connection-level failure, already accounted
                current_seq = None
            try:
                send_message(conn, {"op": "bye"})
            except OSError:
                pass
        except DistProtocolError:
            if current_seq is not None:
                self._dispatch_failed(current_seq, "garbled")
                current_seq = None
            else:
                with self._lock:
                    self.stats.garbled_messages += 1
                    self._count("garbled_messages")
        except OSError:
            pass
        finally:
            if current_seq is not None:
                self._dispatch_failed(current_seq, "crash")
            if joined:
                with self._lock:
                    self._workers_connected -= 1
                    self.stats.workers_left += 1
                    self._count("workers_left")
            try:
                conn.close()
            except OSError:
                pass

    def _wait_for_shard(self) -> Optional[int]:
        with self._cond:
            shard_id = self._pop_ready()
            if shard_id is None and not self._done.is_set():
                self._cond.wait(timeout=0.2)
                shard_id = self._pop_ready()
            return shard_id

    def _dispatch_one(
        self, conn: socket.socket, worker: str, shard_id: int
    ) -> Optional[int]:
        spec = self.shards[shard_id]
        with self._lock:
            self._dispatch_seq += 1
            seq = self._dispatch_seq
            chaos, forced = self._next_chaos(seq)
            now = time.monotonic()
            dispatch = _Dispatch(
                seq=seq,
                shard_id=shard_id,
                worker=worker,
                started=now,
                deadline=now + self.lease.deadline_seconds(self._ewma),
            )
            self._outstanding[seq] = dispatch
            self.stats.dispatches += 1
            self._count("dispatches")
            self._last_activity = now
            if forced:
                # Expire synchronously instead of shrinking the deadline
                # and racing the monitor tick: the steal is guaranteed,
                # which is what makes the injection deterministic.
                self.stats.forced_lease_expiries += 1
                self._count("forced_lease_expiries")
                dispatch.expired = True
                self.stats.lease_expiries += 1
                self.stats.worker_hangs += 1
                self._count("lease_expiries")
                self._count("worker_hangs")
                self._requeue(shard_id, "steal")
        message: Dict[str, object] = {
            "op": "shard",
            "shard": shard_id,
            "seq": seq,
            "payload": pack_payload(SHARD_FORMAT, spec),
        }
        if chaos is not None:
            message["chaos"] = chaos
        try:
            send_message(conn, message)
        except OSError:
            self._dispatch_failed(seq, "disconnect")
            return None
        return seq

    def _await_result(
        self, conn: socket.socket, reader: LineReader, name: str, seq: int
    ) -> bool:
        """Waits for ``seq``'s result (or a terminal connection event).

        Keeps waiting even after the shard is stolen or completed
        elsewhere — a straggler's late result must be *received* and
        discarded by sequence id, not raced against a socket close."""
        conn.settimeout(0.25)
        while not self._stopping:
            if self._done.is_set():
                return True  # dispatch becomes abandoned at shutdown
            try:
                message = recv_message(reader, name)
            except TimeoutError:
                continue
            except OSError:
                self._dispatch_failed(seq, "crash")
                return False
            if message is None:
                self._dispatch_failed(seq, "crash")
                return False
            op = message.get("op")
            if op == "result":
                result = unpack_payload(
                    str(message.get("payload", "")),
                    RESULT_FORMAT,
                    expected_type=ShardResult,
                    name=name,
                )
                self._submit_result(
                    result.shard_id,
                    result,
                    seq=int(message.get("seq", -1)),
                    remote=True,
                )
                return True
            if op == "shard_error":
                self._dispatch_failed(seq, "disconnect")
                with self._lock:
                    self._last_activity = time.monotonic()
                return True  # worker survives a shard-level error
            raise DistProtocolError(
                f"{name}: unexpected op {op!r} while awaiting a result"
            )
        return True

    # -- local execution (degradation + local-only shards) -------------------

    def _maybe_run_local(self) -> bool:
        shard_id: Optional[int] = None
        with self._lock:
            if self._local_queue:
                candidate = self._local_queue.pop(0)
                if candidate not in self._completed:
                    shard_id = candidate
            if shard_id is None:
                stale = (
                    time.monotonic() - self._last_activity
                    >= self.degrade_after
                )
                no_workers = self._workers_connected == 0
                if self.expect_workers == 0 or stale:
                    shard_id = self._pop_ready()
                    if shard_id is not None and no_workers and stale:
                        self.stats.degraded = True
            if shard_id is not None:
                self.stats.local_executions += 1
                self._count("local_executions")
        if shard_id is None:
            return False
        result = execute_shard(self.context, self.shards[shard_id])
        self._submit_result(shard_id, result)
        return True

    # -- lifecycle -----------------------------------------------------------

    def run(self) -> DistResult:
        """Drives the job to completion and merges the frontier."""
        started = time.perf_counter()
        self.start()
        try:
            with prof.phase(_P_COORDINATE):
                while not self._done.is_set():
                    if not self._maybe_run_local():
                        self._done.wait(timeout=0.05)
        finally:
            self.stop()
        with self._lock, prof.phase(_P_MERGE):
            merged = merge_shard_results(self._completed, len(self.shards))
        merged.wall_seconds = time.perf_counter() - started
        merged.stats = self.stats.snapshot()
        return merged

    def stop(self) -> None:
        """Closes the listener and every connection; abandons stragglers."""
        self._stopping = True
        self._done.set()
        with self._lock:
            self._cond.notify_all()
            for dispatch in self._outstanding.values():
                if not dispatch.done:
                    dispatch.done = True
                    self.stats.abandoned += 1
                    self._count("abandoned")
            self._outstanding.clear()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=2.0)


def run_dist_search(
    context: JobContext,
    shards: List[ShardSpec],
    workers: int = 0,
    lease: Optional[LeasePolicy] = None,
    registry=None,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    degrade_after: float = 10.0,
    chaos_plan=None,
) -> DistResult:
    """One-call distributed search with ``workers`` local worker
    subprocesses (0 = run every shard in the coordinator). The CLI and
    the benchmark drive this; tests and the chaos harness compose the
    pieces directly."""
    coordinator = DistCoordinator(
        context,
        shards,
        lease=lease,
        registry=registry,
        checkpoint_path=checkpoint_path,
        resume=resume,
        degrade_after=degrade_after,
        expect_workers=workers,
        chaos_plan=chaos_plan,
    )
    host, port = coordinator.start()
    procs = []
    try:
        from .worker import spawn_worker_process

        for index in range(workers):
            procs.append(spawn_worker_process(host, port, f"w{index}"))
        return coordinator.run()
    finally:
        coordinator.stop()
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
            proc.wait()
