"""The stateless shard worker.

A worker owns nothing: it connects, identifies itself, receives the job
context once, and executes one shard at a time until the coordinator
says ``bye`` or disappears. Every piece of state it needs arrives in
digest-verified payloads, so a worker can be killed at any instant — or
started on any host — with zero recovery protocol: the coordinator's
lease table is the only authority on who owes what.

Connection loss triggers a bounded reconnect loop (capped backoff +
deterministic jitter via :mod:`repro.search.retry`, the serve client's
shape), because a dropped or garbled connection — including one injected
by the chaos proxy — is a transport event, not a reason to lose a warm
process with a built group graph.
"""

from __future__ import annotations

import os
import socket
import time
from dataclasses import dataclass
from typing import Dict, Optional

from .. import retry
from .messages import (
    DIST_PROTOCOL,
    JOB_FORMAT,
    RESULT_FORMAT,
    SHARD_FORMAT,
    DistProtocolError,
    LineReader,
    pack_payload,
    recv_message,
    send_message,
    unpack_payload,
)
from .shards import ShardSpec, execute_shard


@dataclass
class WorkerStats:
    """One worker process's lifetime accounting."""

    connects: int = 0
    reconnects: int = 0
    jobs_loaded: int = 0
    shards_executed: int = 0
    results_sent: int = 0
    shard_errors: int = 0
    protocol_errors: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "connects": self.connects,
            "reconnects": self.reconnects,
            "jobs_loaded": self.jobs_loaded,
            "shards_executed": self.shards_executed,
            "results_sent": self.results_sent,
            "shard_errors": self.shard_errors,
            "protocol_errors": self.protocol_errors,
        }


def run_dist_worker(
    host: str,
    port: int,
    name: Optional[str] = None,
    max_connect_attempts: int = 8,
    backoff_base: float = 0.05,
    backoff_cap: float = 2.0,
    idle_timeout: float = 300.0,
    log=None,
) -> WorkerStats:
    """Serves shards until the coordinator says bye or stays gone.

    The connect-attempt budget resets after every successful shard, so
    ``max_connect_attempts`` bounds *consecutive* transport failures —
    a long job with occasional drops is served to the end.
    """
    name = name or f"worker-{os.getpid()}"
    stats = WorkerStats()
    failures = 0
    executed_at_last_failure = 0
    while True:
        try:
            finished = _serve_connection(
                host, port, name, stats, idle_timeout, log
            )
            if finished:
                return stats
            reason = "coordinator closed the connection"
        except (OSError, DistProtocolError) as exc:
            if isinstance(exc, DistProtocolError):
                stats.protocol_errors += 1
            reason = str(exc) or type(exc).__name__
        # Shards completed since the last transport failure prove the
        # coordinator is real; reset the consecutive-failure budget.
        if stats.shards_executed > executed_at_last_failure:
            failures = 0
        executed_at_last_failure = stats.shards_executed
        failures += 1
        if failures >= max_connect_attempts:
            _log(log, f"{name}: giving up after {failures} failures")
            return stats
        if stats.connects > 0:
            stats.reconnects += 1
        _log(log, f"{name}: connection lost ({reason}); retrying")
        time.sleep(
            retry.backoff_delay(
                backoff_base, backoff_cap, failures, name, low=0.5, high=1.0
            )
        )


def _serve_connection(
    host: str,
    port: int,
    name: str,
    stats: WorkerStats,
    idle_timeout: float,
    log,
) -> bool:
    """One connection's lifetime; True when the coordinator said bye."""
    sock = socket.create_connection((host, port), timeout=5.0)
    stats.connects += 1
    context = None
    try:
        sock.settimeout(idle_timeout)
        reader = LineReader(sock)
        send_message(
            sock,
            {
                "op": "hello",
                "proto": DIST_PROTOCOL,
                "worker": name,
                "pid": os.getpid(),
            },
        )
        while True:
            message = recv_message(reader, "coordinator")
            if message is None:
                return False  # EOF; caller decides whether to reconnect
            op = message.get("op")
            if op == "job":
                job = unpack_payload(
                    str(message.get("payload", "")),
                    JOB_FORMAT,
                    expected_type=dict,
                    name="coordinator",
                )
                context = job["context"]
                stats.jobs_loaded += 1
                _log(log, f"{name}: job loaded ({job['shard_count']} shards)")
            elif op == "shard":
                if context is None:
                    raise DistProtocolError(
                        "shard received before any job context"
                    )
                _apply_chaos(message.get("chaos"), log, name)
                spec = unpack_payload(
                    str(message.get("payload", "")),
                    SHARD_FORMAT,
                    expected_type=ShardSpec,
                    name="coordinator",
                )
                seq = int(message.get("seq", -1))
                try:
                    result = execute_shard(context, spec)
                except Exception as exc:  # a real program/search error
                    stats.shard_errors += 1
                    send_message(
                        sock,
                        {
                            "op": "shard_error",
                            "shard": spec.shard_id,
                            "seq": seq,
                            "error": f"{type(exc).__name__}: {exc}",
                        },
                    )
                    continue
                stats.shards_executed += 1
                send_message(
                    sock,
                    {
                        "op": "result",
                        "shard": result.shard_id,
                        "seq": seq,
                        "payload": pack_payload(RESULT_FORMAT, result),
                    },
                )
                stats.results_sent += 1
            elif op == "bye":
                return True
            else:
                raise DistProtocolError(
                    f"coordinator sent unexpected op {op!r}"
                )
    finally:
        try:
            sock.close()
        except OSError:
            pass


def _apply_chaos(token, log, name: str) -> None:
    """Honors an injected fault riding on a shard message: ``crash``
    dies mid-shard exactly like ``kill -9`` (no cleanup, no unwinding),
    ``hang`` sleeps past the shard's lease before working."""
    if not isinstance(token, dict):
        return
    kind = token.get("kind")
    if kind == "crash":
        _log(log, f"{name}: chaos crash token — exiting hard")
        os._exit(137)
    if kind == "hang":
        time.sleep(float(token.get("seconds", 1.0)))


def _log(log, message: str) -> None:
    if log is not None:
        print(message, file=log, flush=True)


def spawn_worker_process(host: str, port: int, name: str):
    """Starts ``repro dist-worker`` as a subprocess against the given
    coordinator; the caller owns the process handle."""
    import subprocess
    import sys

    package_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    source_root = os.path.dirname(package_root)
    env = dict(os.environ)
    env["PYTHONPATH"] = source_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "dist-worker",
            "--host",
            host,
            "--port",
            str(port),
            "--name",
            name,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
