"""Wire messages of the coordinator/worker protocol.

The substrate is the serve layer's newline-delimited JSON
(:mod:`repro.serve.protocol`): one JSON object per line, sorted keys,
ASCII, bounded line length. On top of it, every bulky value (the job
context, a shard spec, a shard result) travels as a **storage record** —
the same ``{"format", "digest"}`` header + pickle layout search
checkpoints use on disk (:mod:`repro.search.storage`), base64-encoded
into one JSON field. A garbled connection therefore surfaces as a typed
:class:`~repro.search.storage.StorageError` (digest or format mismatch)
before a single byte is unpickled, and the receiver can refuse, count,
and re-dispatch instead of crashing on a half-message.

Message flow (one connection per worker, coordinator is the server)::

    worker → coord   {"op": "hello", "proto": ..., "worker": ..., "pid": ...}
    coord  → worker  {"op": "job",    "payload": <b64 job record>}
    coord  → worker  {"op": "shard",  "shard": id, "seq": n,
                      "payload": <b64 shard record>, ["chaos": ...]}
    worker → coord   {"op": "result", "shard": id, "seq": n,
                      "payload": <b64 result record>}
    worker → coord   {"op": "shard_error", "shard": id, "seq": n,
                      "error": "..."}
    coord  → worker  {"op": "bye"}

``seq`` is the coordinator's global dispatch sequence id: a shard
re-dispatched after a lease expiry carries a *new* seq, so a late result
from the original dispatch is recognizable — first result per shard
wins, later ones are discarded by seq, and the reduction order never
depends on arrival order.
"""

from __future__ import annotations

import base64
from typing import Dict, Optional, Tuple, Type

from ...lang.errors import BambooError
from ...serve.protocol import MAX_LINE_BYTES, ProtocolError, decode, encode
from ..storage import StorageError, pack_pickle_record, unpack_pickle_record

#: bumped on any incompatible message-shape change; a hello carrying a
#: different protocol is refused before any payload crosses the wire
DIST_PROTOCOL = "repro.search/dist-v1"

JOB_FORMAT = "repro.search/dist-job-v1"
SHARD_FORMAT = "repro.search/dist-shard-v1"
RESULT_FORMAT = "repro.search/dist-result-v1"
FRONTIER_FORMAT = "repro.search/dist-frontier-v1"

__all__ = [
    "DIST_PROTOCOL",
    "JOB_FORMAT",
    "SHARD_FORMAT",
    "RESULT_FORMAT",
    "FRONTIER_FORMAT",
    "DistProtocolError",
    "LineReader",
    "pack_payload",
    "unpack_payload",
    "send_message",
    "recv_message",
]


class DistProtocolError(BambooError):
    """A peer sent something the dist protocol cannot accept.

    Wraps both framing problems (bad JSON, oversized lines — the serve
    layer's :class:`~repro.serve.protocol.ProtocolError`) and payload
    problems (digest/format mismatch — :class:`StorageError`), so the
    connection-handling code has one thing to catch, count as a garbled
    message, and answer by dropping the connection.
    """

    def __init__(self, message: str, code: str = "protocol"):
        super().__init__(message)
        self.code = code


def pack_payload(fmt: str, obj: object) -> str:
    """Pickles ``obj`` into a digest-bearing storage record and base64s
    it into one ASCII JSON-safe field."""
    return base64.b64encode(pack_pickle_record(fmt, obj)).decode("ascii")


def unpack_payload(
    text: str,
    fmt: str,
    expected_type: Optional[Type] = None,
    name: str = "<peer>",
) -> object:
    """Decodes, digest-verifies, and unpickles one payload field; raises
    :class:`DistProtocolError` on anything short of a valid record."""
    try:
        data = base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as exc:
        raise DistProtocolError(
            f"{name}: payload is not base64: {exc}", code="not_record"
        )
    try:
        _, obj = unpack_pickle_record(
            data, fmt, expected_type=expected_type, kind="dist payload",
            name=name,
        )
    except StorageError as exc:
        raise DistProtocolError(str(exc), code=exc.code)
    return obj


class LineReader:
    """Newline-framed socket reader that survives read timeouts.

    A ``sock.makefile("rb")`` reader may lose buffered bytes when a
    timeout interrupts it mid-line; the coordinator polls with short
    timeouts while watching leases, so partial lines must stay buffered
    across attempts. ``socket.timeout`` from ``recv`` propagates to the
    caller with the partial line intact.
    """

    def __init__(self, sock):
        self._sock = sock
        self._buf = bytearray()
        self._eof = False

    def readline(self, limit: int) -> bytes:
        while True:
            index = self._buf.find(b"\n")
            if index >= 0:
                index += 1
                line = bytes(self._buf[:index])
                del self._buf[:index]
                return line
            if self._eof or len(self._buf) > limit:
                line = bytes(self._buf)
                self._buf.clear()
                return line
            chunk = self._sock.recv(65536)
            if not chunk:
                self._eof = True
                continue
            self._buf.extend(chunk)


def send_message(sock, message: Dict[str, object]) -> None:
    """Encodes and writes one message line (sorted keys, ASCII)."""
    sock.sendall(encode(message))


def recv_message(reader, name: str = "<peer>") -> Optional[Dict[str, object]]:
    """Reads one message line from a ``makefile("rb")`` reader.

    Returns ``None`` on clean EOF; raises :class:`DistProtocolError` on
    an oversized or undecodable line. Socket timeouts propagate as
    ``TimeoutError`` for the caller's lease bookkeeping.
    """
    line = reader.readline(MAX_LINE_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise DistProtocolError(
            f"{name}: message line exceeds {MAX_LINE_BYTES} bytes",
            code="oversized",
        )
    try:
        return decode(line)
    except ProtocolError as exc:
        raise DistProtocolError(f"{name}: {exc}", code="garbled")


def check_hello(message: Dict[str, object]) -> Tuple[str, int]:
    """Validates a worker's hello; returns ``(worker_name, pid)``."""
    if message.get("op") != "hello":
        raise DistProtocolError(
            f"expected hello, got {message.get('op')!r}", code="bad_hello"
        )
    proto = message.get("proto")
    if proto != DIST_PROTOCOL:
        raise DistProtocolError(
            f"worker speaks {proto!r}, coordinator speaks "
            f"{DIST_PROTOCOL!r}",
            code="proto_mismatch",
        )
    return str(message.get("worker", "?")), int(message.get("pid", 0))
