"""Job decomposition, shard execution, and deterministic reduction.

A distributed synthesis job is a list of **shards** — independent,
seeded annealing restarts (``bench_fig10_dsa``'s natural axis). Each
shard is a pure function of ``(JobContext, ShardSpec)``: a fresh
:class:`~repro.search.cache.SimCache`, a fresh RNG seeded from the spec,
one full DSA run. That purity is the whole determinism story:

* a shard re-executed after a worker crash produces the same
  :class:`ShardResult` bit for bit, so retry can never change the
  answer;
* two workers racing on a stolen shard produce *identical* results, so
  first-result-wins is safe and the loser is discardable;
* the merged outcome — reduced strictly in shard-id order by
  :func:`merge_shard_results` — is independent of which host ran what
  when, which is exactly the single-host serial baseline
  (:func:`run_serial_baseline`) computes.

What distribution gives up is the *shared* cache a single-host
multi-restart loop could thread through its restarts: shards must not
see each other's cache state, or shard ``i``'s result would depend on
shards ``0..i-1`` having run first (and on the same host). Cache
warmth is a wall-clock knob everywhere else in this codebase; here it
is pinned off across shard boundaries by construction.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ...obs import prof
from ...schedule.anneal import AnnealConfig, DirectedSimulatedAnnealing
from ...schedule.layout import Layout
from ..cache import SimCache
from ..storage import payload_digest, pack_pickle_record

_P_SHARD = prof.intern_phase("dist.shard")

#: cycles sentinel mirroring :data:`repro.search.evaluator.INFEASIBLE_CYCLES`
_NO_RESULT = 1 << 62


@dataclass
class JobContext:
    """Everything a worker needs to execute any shard of one job.

    Shipped once per worker connection (like the process pool's
    initializer payload), so per-shard messages stay small. The group
    graph is deliberately *not* shipped: it is a deterministic function
    of ``(compiled, profile)`` and each worker rebuilds it once, lazily.
    """

    compiled: object
    profile: object
    num_cores: int
    hints: Optional[Dict[str, str]] = None
    mesh_width: Optional[int] = None
    core_speeds: Optional[Dict[int, float]] = None
    #: feed delta-resimulation hints to shard evaluators (cost knob only)
    delta: bool = True
    #: identifies the program+workload for frontier-checkpoint safety;
    #: callers pass e.g. sha256 of the source text plus arguments
    source_digest: str = ""

    def __post_init__(self):
        self._group_graph = None

    def group_graph(self):
        """The job's group graph, built once per process."""
        if self._group_graph is None:
            from ...core import annotated_cstg
            from ...schedule.coregroup import build_group_graph

            cstg = annotated_cstg(self.compiled, self.profile)
            self._group_graph = build_group_graph(
                self.compiled.info, cstg, self.profile, granularity="task"
            )
        return self._group_graph

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_group_graph"] = None  # rebuilt lazily on the far side
        return state


@dataclass(frozen=True)
class ShardSpec:
    """One independent annealing restart: an id and a complete config."""

    shard_id: int
    config: AnnealConfig


@dataclass
class ShardResult:
    """The deterministic outcome of one shard (plus its wall clock).

    Every field except ``wall_seconds`` is a pure function of the shard;
    :func:`result_key` collects exactly those fields, and the chaos
    harness compares keys — never walls — across execution modes.
    """

    shard_id: int
    best_cycles: int
    best_layout: Layout
    evaluations: int
    cache_hits: int
    requested_evaluations: int
    pruned_evaluations: int
    iterations: int
    history: List[int] = field(default_factory=list)
    wall_seconds: float = 0.0


def result_key(result: ShardResult) -> Tuple:
    """The deterministic identity of one shard result."""
    return (
        result.shard_id,
        result.best_cycles,
        result.best_layout.as_dict(),
        result.evaluations,
        result.cache_hits,
        result.requested_evaluations,
        result.pruned_evaluations,
        result.iterations,
        tuple(result.history),
    )


def make_restart_shards(
    template: AnnealConfig, restarts: int, base_seed: int = 1234
) -> List[ShardSpec]:
    """Derives one seeded shard per restart, ``bench_fig10_dsa``-style:
    a base RNG hands each restart its own search seed."""
    if restarts < 1:
        raise ValueError("restarts must be >= 1")
    rng = random.Random(base_seed)
    return [
        ShardSpec(
            shard_id=i,
            config=replace(template, seed=rng.randrange(1 << 30)),
        )
        for i in range(restarts)
    ]


def job_digest(context: JobContext, shards: List[ShardSpec]) -> str:
    """Identifies one (context, shard list) pair for frontier-checkpoint
    resume safety: a checkpoint taken for a different program, workload,
    shard count, or seed schedule must be refused, not merged."""
    summary = {
        "source_digest": context.source_digest,
        "num_cores": context.num_cores,
        "mesh_width": context.mesh_width,
        "core_speeds": sorted((context.core_speeds or {}).items()),
        "hints": sorted((context.hints or {}).items()),
        "delta": context.delta,
        "shards": [(s.shard_id, s.config) for s in shards],
    }
    return payload_digest(pack_pickle_record("dist-job-summary", summary))


def execute_shard(context: JobContext, spec: ShardSpec) -> ShardResult:
    """Runs one shard to completion: a fresh cache, one full DSA run.

    Called identically by remote workers, the coordinator's local
    fallback path, and the single-host serial baseline — bit-identity
    across the three is by construction, not by reconciliation.
    """
    started = time.perf_counter()
    with prof.phase(_P_SHARD):
        with DirectedSimulatedAnnealing(
            context.compiled,
            context.profile,
            context.num_cores,
            config=spec.config,
            hints=context.hints,
            group_graph=context.group_graph(),
            mesh_width=context.mesh_width,
            core_speeds=context.core_speeds,
            cache=SimCache(),
            delta=context.delta,
        ) as dsa:
            outcome = dsa.run()
    return ShardResult(
        shard_id=spec.shard_id,
        best_cycles=outcome.best_cycles,
        best_layout=outcome.best_layout,
        evaluations=outcome.evaluations,
        cache_hits=outcome.cache_hits,
        requested_evaluations=outcome.requested_evaluations,
        pruned_evaluations=outcome.pruned_evaluations,
        iterations=outcome.iterations,
        history=list(outcome.history),
        wall_seconds=time.perf_counter() - started,
    )


@dataclass
class DistResult:
    """The merged outcome of one distributed (or serial-baseline) job."""

    #: per-shard results in shard-id order
    shards: List[ShardResult]
    #: best cycles after merging shards ``0..i`` — the incumbent
    #: trajectory the bit-identity contract covers
    trajectory: List[int]
    best_shard_id: int
    best_cycles: int
    best_layout: Layout
    evaluations: int
    cache_hits: int
    requested_evaluations: int
    pruned_evaluations: int
    wall_seconds: float = 0.0
    #: coordinator accounting snapshot (None for the serial baseline)
    stats: Optional[Dict[str, object]] = None

    def key(self) -> Tuple:
        """Deterministic identity: every shard key + the merged frontier."""
        return (
            tuple(result_key(r) for r in self.shards),
            tuple(self.trajectory),
            self.best_shard_id,
            self.best_cycles,
        )


def merge_shard_results(
    results: Dict[int, ShardResult], shard_count: int
) -> DistResult:
    """Reduces completed shards strictly in shard-id order.

    Arrival order, worker assignment, steal races — none of it can reach
    this function: it sees only ``{shard_id: result}``. Ties on best
    cycles go to the lowest shard id, the same winner a serial loop
    keeping its first-seen incumbent would pick.
    """
    missing = [i for i in range(shard_count) if i not in results]
    if missing:
        raise ValueError(f"cannot merge: shards {missing} incomplete")
    ordered = [results[i] for i in range(shard_count)]
    trajectory: List[int] = []
    best_cycles = _NO_RESULT
    best_id = -1
    for result in ordered:
        if result.best_cycles < best_cycles:
            best_cycles = result.best_cycles
            best_id = result.shard_id
        trajectory.append(best_cycles)
    return DistResult(
        shards=ordered,
        trajectory=trajectory,
        best_shard_id=best_id,
        best_cycles=best_cycles,
        best_layout=results[best_id].best_layout,
        evaluations=sum(r.evaluations for r in ordered),
        cache_hits=sum(r.cache_hits for r in ordered),
        requested_evaluations=sum(r.requested_evaluations for r in ordered),
        pruned_evaluations=sum(r.pruned_evaluations for r in ordered),
    )


def run_serial_baseline(
    context: JobContext, shards: List[ShardSpec]
) -> DistResult:
    """The single-host reference: every shard in order, in process."""
    started = time.perf_counter()
    results = {spec.shard_id: execute_shard(context, spec) for spec in shards}
    merged = merge_shard_results(results, len(shards))
    merged.wall_seconds = time.perf_counter() - started
    return merged


def describe_dist_result(result: DistResult) -> str:
    """The deterministic report block shared by every execution mode.

    Contains no wall clocks, worker names, or counters — a distributed
    run's stdout must be byte-identical to the serial baseline's, and CI
    diffs exactly this text.
    """
    lines = [f"dist search: {len(result.shards)} shard(s)"]
    for shard in result.shards:
        lines.append(
            f"  shard {shard.shard_id:3d}: {shard.best_cycles} cycles "
            f"(evaluations {shard.evaluations}, cache hits "
            f"{shard.cache_hits}, iterations {shard.iterations})"
        )
    frontier = " -> ".join(str(v) for v in _frontier_steps(result.trajectory))
    lines.append(f"  frontier: {frontier}")
    lines.append(
        f"  best: shard {result.best_shard_id}, "
        f"{result.best_cycles} cycles"
    )
    placements = result.best_layout.as_dict()
    for group in sorted(placements):
        lines.append(f"    {group}: {placements[group]}")
    return "\n".join(lines)


def _frontier_steps(trajectory: List[int]) -> List[int]:
    """The strictly improving prefix values (the frontier's new bests)."""
    steps: List[int] = []
    for value in trajectory:
        if not steps or value < steps[-1]:
            steps.append(value)
    return steps
