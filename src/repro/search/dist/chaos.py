"""Distributed-search chaos: seeded multi-host fault plans, checked
invariants.

The top rung of the fault-layer ladder (``docs/RESILIENCE.md``): below
this, :mod:`repro.resilience.chaos` breaks the *simulated* machine,
:mod:`repro.search.hostchaos` breaks worker *processes* inside one
search, and :mod:`repro.serve.netchaos` breaks the daemon's *network*.
This harness breaks whole worker **hosts** and the links between them —
against real ``repro dist-worker`` subprocesses — and machine-checks:

* **Termination** — every chaos run completes (leases + bounded retries
  + local degradation guarantee it by construction).
* **Dist-vs-serial bit-identity** — the merged
  :class:`~repro.search.dist.shards.DistResult` key (every shard result,
  the incumbent trajectory, the winning layout) equals the single-host
  serial baseline's, whatever crashed, hung, dropped, or garbled.
* **Exactly-once shard accounting** — the
  :meth:`~repro.search.dist.coordinator.DistStats.check_accounting`
  identity holds: every dispatch reaches exactly one terminal state.
* **Control-plan zero activity** — plan 0 (empty) records no steals,
  retries, failures, duplicates, injections, or degradation.

A separate **interrupt + resume** phase abandons a coordinator
mid-frontier (no shutdown, exactly what SIGKILL leaves behind: the
checkpoint file) and checks that a resumed coordinator completes only
the missing shards and merges to the identical key — and that a
checkpoint from a *different* job is refused with a typed error.

Fault transport: dispatch faults (``crash_worker``/``hang_worker``/
``expire_lease``) ride shard messages through the coordinator's own
chaos hook; wire faults (``drop_conn``/``garble``) fire in
:class:`DistChaosProxy`, a full-duplex cousin of
:class:`repro.serve.netchaos.ChaosProxy` (that one is request/response
lockstep; the dist protocol pushes coordinator→worker messages
unprompted, so the proxy pumps each direction independently);
``kill_worker`` is a literal ``SIGKILL`` of a worker subprocess mid-run.
"""

from __future__ import annotations

import os
import signal
import socket
import struct
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..hostchaos import DistChaosPlan
from .coordinator import DistCoordinator, DistError, LeasePolicy
from .shards import JobContext, ShardSpec, run_serial_baseline
from .worker import spawn_worker_process

#: seconds before a chaos run is declared hung (a termination violation)
RUN_DEADLINE = 180.0

_GARBAGE = b"\x16\x03\x01 not a dist message \xff\xfe\n"


class DistChaosProxy:
    """A full-duplex TCP proxy injecting wire faults between workers and
    a coordinator.

    Worker→coordinator bytes pass through untouched; coordinator→worker
    *messages* (newline-framed) advance one global sequence shared
    across connections, and when the armed plan designates the current
    message the proxy misbehaves: ``drop_conn`` hard-drops both sides
    with an RST, ``garble`` substitutes undecodable bytes. Either way
    the worker reconnects (through the proxy again) and the coordinator
    re-dispatches — the invariants say neither can change the result.
    """

    def __init__(self, upstream_port: int, host: str = "127.0.0.1"):
        self.host = host
        self._upstream_port = upstream_port
        self._plan: Optional[DistChaosPlan] = None
        self._lock = threading.Lock()
        self._sequence = 0
        #: (message, kind) pairs that actually fired since the last arm()
        self.fired: List[Tuple[int, str]] = []
        self._closing = False
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, 0))
        self._listener.listen(16)
        self.port = self._listener.getsockname()[1]
        threading.Thread(
            target=self._accept_loop, name="dist-chaos-accept", daemon=True
        ).start()

    def arm(self, plan: Optional[DistChaosPlan]) -> None:
        with self._lock:
            self._plan = plan
            self._sequence = 0
            self.fired = []

    def set_upstream(self, port: int) -> None:
        """Re-points the proxy at a fresh coordinator (one per plan)."""
        with self._lock:
            self._upstream_port = port

    def close(self) -> None:
        self._closing = True
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass

    # -- internals -----------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._handle,
                args=(client,),
                name="dist-chaos-conn",
                daemon=True,
            ).start()

    def _next_fault(self) -> Optional[str]:
        with self._lock:
            self._sequence += 1
            sequence = self._sequence
            plan = self._plan
            if plan is None:
                return None
            kind = plan.wire_fault(sequence)
            if kind is not None:
                self.fired.append((sequence, kind))
            return kind

    def _handle(self, client: socket.socket) -> None:
        with self._lock:
            upstream_port = self._upstream_port
        try:
            upstream = socket.create_connection(
                (self.host, upstream_port), timeout=5.0
            )
        except OSError:
            client.close()
            return

        def closer() -> None:
            for sock in (client, upstream):
                try:
                    sock.close()
                except OSError:  # pragma: no cover
                    pass

        def pump_up() -> None:
            # worker → coordinator: raw passthrough
            try:
                while True:
                    chunk = client.recv(65536)
                    if not chunk:
                        break
                    upstream.sendall(chunk)
            except OSError:
                pass
            closer()

        def pump_down() -> None:
            # coordinator → worker: one fault decision per message line
            reader = upstream.makefile("rb")
            try:
                while True:
                    line = reader.readline()
                    if not line:
                        break
                    kind = self._next_fault()
                    if kind is None:
                        client.sendall(line)
                        continue
                    if kind == "drop_conn":
                        # RST instead of FIN: the hard drop.
                        client.setsockopt(
                            socket.SOL_SOCKET,
                            socket.SO_LINGER,
                            struct.pack("ii", 1, 0),
                        )
                        break
                    # "garble": undecodable bytes where a message was due
                    client.sendall(_GARBAGE)
                    break
            except OSError:
                pass
            closer()

        threading.Thread(target=pump_up, daemon=True).start()
        pump_down()


# -- sweep bookkeeping ---------------------------------------------------------


@dataclass
class DistChaosRun:
    """Outcome of one plan."""

    index: int
    seed: int
    plan: DistChaosPlan
    stats: Optional[Dict[str, object]] = None
    wire_fired: List[Tuple[int, str]] = field(default_factory=list)
    error: Optional[str] = None
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.error is None and not self.violations


@dataclass
class DistChaosReport:
    """Outcome of a full dist-chaos sweep (plans + resume phase)."""

    runs: List[DistChaosRun]
    resume_violations: List[str] = field(default_factory=list)
    resumed_shards: int = 0

    @property
    def ok(self) -> bool:
        return not self.resume_violations and all(run.ok for run in self.runs)

    def violations(self) -> List[str]:
        lines: List[str] = []
        for run in self.runs:
            if run.error is not None:
                lines.append(f"plan {run.index} (seed {run.seed}): {run.error}")
            for violation in run.violations:
                lines.append(
                    f"plan {run.index} (seed {run.seed}): {violation}"
                )
        lines.extend(f"resume phase: {line}" for line in self.resume_violations)
        return lines

    def total(self, counter: str) -> int:
        return sum(
            int(run.stats.get(counter, 0))
            for run in self.runs
            if run.stats is not None
        )

    def describe(self) -> str:
        lines = [f"dist chaos: {len(self.runs)} plan(s)"]
        for run in self.runs:
            status = "ok" if run.ok else "FAIL"
            lines.append(f"  plan {run.index}: {run.plan.describe()} [{status}]")
        lines.append(
            f"totals: {self.total('dispatches')} dispatch(es), "
            f"{self.total('steals')} steal(s), "
            f"{self.total('retries')} retry(ies), "
            f"{self.total('duplicates_discarded')} duplicate(s) discarded, "
            f"{self.total('worker_crashes')} crash(es), "
            f"{self.total('worker_hangs')} hang(s), "
            f"{self.total('worker_disconnects')} disconnect(s), "
            f"{self.total('garbled_messages')} garbled"
        )
        lines.append(
            f"resume phase: {self.resumed_shards} shard(s) resumed from the "
            "frontier checkpoint"
        )
        bad = self.violations()
        if bad:
            lines.append(f"INVARIANT VIOLATIONS ({len(bad)}):")
            lines.extend(f"  {line}" for line in bad)
        else:
            lines.append(
                "all invariants held: termination, dist-vs-serial "
                "bit-identity, exactly-once shard accounting, control-plan "
                "zero activity, checkpointed resume"
            )
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema": "repro.search/dist-chaos-report-v1",
            "ok": self.ok,
            "plans": [
                {
                    "index": run.index,
                    "seed": run.seed,
                    "plan": run.plan.describe(),
                    "ok": run.ok,
                    "stats": run.stats,
                    "wire_fired": [list(pair) for pair in run.wire_fired],
                    "error": run.error,
                    "violations": run.violations,
                }
                for run in self.runs
            ],
            "resumed_shards": self.resumed_shards,
            "violations": self.violations(),
        }


#: the control plan must show exactly zero of each of these
_CONTROL_ZERO = (
    "steals",
    "retries",
    "dispatch_failures",
    "duplicates_discarded",
    "abandoned",
    "lease_expiries",
    "worker_crashes",
    "worker_disconnects",
    "worker_hangs",
    "garbled_messages",
    "local_only_shards",
    "injected_crashes",
    "injected_hangs",
    "forced_lease_expiries",
    "resumed_shards",
)


def _check_run(run: DistChaosRun, result, baseline, check_accounting) -> None:
    if result.key() != baseline.key():
        run.violations.append(
            "chaos result diverged from the serial baseline "
            f"({result.best_cycles} vs {baseline.best_cycles} cycles)"
        )
    run.violations.extend(check_accounting())
    stats = run.stats or {}
    if run.plan.is_empty():
        activity = {
            name: int(stats.get(name, 0))
            for name in _CONTROL_ZERO
            if int(stats.get(name, 0))
        }
        if activity:
            run.violations.append(
                f"control plan recorded fault activity: {activity}"
            )
        if stats.get("degraded"):
            run.violations.append("control plan degraded to local execution")
    else:
        fired = (
            int(stats.get("injected_crashes", 0))
            + int(stats.get("injected_hangs", 0))
            + int(stats.get("forced_lease_expiries", 0))
            + len(run.wire_fired)
            + (1 if run.plan.kill_worker else 0)
        )
        if fired == 0:
            run.violations.append(
                "no planned fault fired (horizon too large for workload?)"
            )


def _run_plan(
    run: DistChaosRun,
    context: JobContext,
    shards: List[ShardSpec],
    baseline,
    lease: LeasePolicy,
    workers: int,
    proxy: DistChaosProxy,
) -> None:
    coordinator = DistCoordinator(
        context,
        shards,
        lease=lease,
        expect_workers=workers,
        degrade_after=30.0,
        chaos_plan=None if run.plan.is_empty() else run.plan,
    )
    proxy.arm(run.plan)
    _, port = coordinator.start()
    proxy.set_upstream(port)
    procs = []
    outcome: Dict[str, object] = {}

    def drive() -> None:
        try:
            outcome["result"] = coordinator.run()
        except Exception as exc:  # noqa: BLE001 - verdict, not control flow
            outcome["error"] = f"{type(exc).__name__}: {exc}"

    def killer() -> None:
        # SIGKILL one whole worker once the job is demonstrably underway.
        deadline = time.monotonic() + RUN_DEADLINE
        while time.monotonic() < deadline:
            if coordinator.stats.shards_completed >= 1:
                break
            time.sleep(0.05)
        if procs and procs[0].poll() is None:
            os.kill(procs[0].pid, signal.SIGKILL)

    try:
        for index in range(workers):
            # Workers dial the proxy, not the coordinator.
            procs.append(
                spawn_worker_process(proxy.host, proxy.port, f"w{index}")
            )
        driver = threading.Thread(target=drive, daemon=True)
        driver.start()
        if run.plan.kill_worker:
            threading.Thread(target=killer, daemon=True).start()
        driver.join(timeout=RUN_DEADLINE)
        if driver.is_alive():
            run.error = f"did not terminate within {RUN_DEADLINE:.0f}s"
            return
    finally:
        coordinator.stop()
        proxy.arm(None)
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
            proc.wait()
    if "error" in outcome:
        run.error = str(outcome["error"])
        return
    result = outcome["result"]
    run.stats = coordinator.stats.snapshot()
    run.wire_fired = list(proxy.fired)
    _check_run(run, result, baseline, coordinator.stats.check_accounting)


def _resume_phase(
    context: JobContext,
    shards: List[ShardSpec],
    baseline,
    lease: LeasePolicy,
    report: DistChaosReport,
) -> None:
    """Abandon a coordinator mid-frontier, resume from its checkpoint."""
    interrupt_after = min(2, len(shards) - 1)
    with tempfile.TemporaryDirectory(prefix="repro-dist-chaos-") as tmp:
        path = os.path.join(tmp, "frontier.ckpt")
        first = DistCoordinator(
            context,
            shards,
            lease=lease,
            checkpoint_path=path,
            expect_workers=0,
        )
        # Complete a frontier prefix locally, then walk away without any
        # shutdown — the checkpoint file is all a SIGKILL would leave.
        while first.stats.shards_completed < interrupt_after:
            if not first._maybe_run_local():
                report.resume_violations.append(
                    "interrupted coordinator ran out of local shards early"
                )
                return
        if first.stats.frontier_checkpoints < 1:
            report.resume_violations.append(
                "no frontier checkpoint written before the interrupt"
            )
        second = DistCoordinator(
            context,
            shards,
            lease=lease,
            checkpoint_path=path,
            resume=True,
            expect_workers=0,
        )
        result = second.run()
        report.resumed_shards = second.stats.resumed_shards
        if second.stats.resumed_shards != interrupt_after:
            report.resume_violations.append(
                f"expected {interrupt_after} resumed shard(s), got "
                f"{second.stats.resumed_shards}"
            )
        if result.key() != baseline.key():
            report.resume_violations.append(
                "resumed result diverged from the serial baseline"
            )
        # A checkpoint from a *different* job must be refused, typed.
        foreign = shards[:-1]
        try:
            DistCoordinator(
                context,
                foreign,
                lease=lease,
                checkpoint_path=path,
                resume=True,
                expect_workers=0,
            )
        except DistError:
            pass
        else:
            report.resume_violations.append(
                "a foreign job's frontier checkpoint was accepted"
            )


def run_dist_chaos(
    plans: int = 4,
    base_seed: int = 0,
    restarts: int = 6,
    workers: int = 2,
) -> DistChaosReport:
    """Runs a full dist-chaos sweep and returns the per-plan verdicts.

    Builds a small in-process workload (the ``Keyword`` benchmark), runs
    the single-host serial baseline once, then every plan against
    ``workers`` real worker subprocesses behind a fault-injecting proxy.
    Like the other chaos harnesses, nothing raises on violation — the
    report carries the verdicts.
    """
    import hashlib

    from ...bench import get_spec, load_source
    from ...core import compile_program, profile_program
    from ...schedule.anneal import AnnealConfig
    from .shards import make_restart_shards

    spec = get_spec("Keyword")
    source = load_source("Keyword")
    prog_args = ["8"]
    compiled = compile_program(source, spec.filename)
    profile = profile_program(compiled, prog_args)
    context = JobContext(
        compiled=compiled,
        profile=profile,
        num_cores=4,
        source_digest=hashlib.sha256(
            "\x00".join([source] + prog_args).encode("utf-8")
        ).hexdigest(),
    )
    template = AnnealConfig(
        initial_candidates=1,
        max_iterations=3,
        max_evaluations=30,
        patience=2,
        continue_probability=0.2,
    )
    shard_list = make_restart_shards(template, restarts, base_seed=1234)
    # A short lease floor so injected hangs (hang_seconds > floor) breach
    # their leases quickly; shards take well under a second each.
    lease = LeasePolicy(timeout_floor=2.0, timeout_mult=8.0)
    baseline = run_serial_baseline(context, shard_list)

    report = DistChaosReport(runs=[])
    proxy = DistChaosProxy(upstream_port=0)
    try:
        for index in range(plans):
            seed = base_seed + index
            plan = DistChaosPlan.make(
                index, seed, horizon=restarts, hang_seconds=3.0
            )
            run = DistChaosRun(index=index, seed=seed, plan=plan)
            _run_plan(
                run, context, shard_list, baseline, lease, workers, proxy
            )
            report.runs.append(run)
        _resume_phase(context, shard_list, baseline, lease, report)
    finally:
        proxy.close()
    return report
