"""Checkpoint/resume for directed simulated annealing.

A multi-hour search (the paper's Fig. 10 workload at scale) must survive
an interrupted process. :class:`SearchCheckpoint` captures the *complete*
annealing state at an iteration boundary — RNG state, incumbent, the
candidate set for the next iteration, budget counters, patience, history,
and the simulation cache — so
:func:`repro.schedule.anneal.directed_simulated_annealing` can resume it
and produce a run bit-identical to an uninterrupted one (test-enforced
per benchmark).

File format (``repro.search/checkpoint-v2``)
--------------------------------------------

One ASCII JSON header line, then the pickled payload::

    {"format": "repro.search/checkpoint-v2", "digest": "<sha256>", ...}\n
    <pickle bytes>

The atomic-write + digest mechanics (tmp + fsync + rename + directory
fsync; sha256 over the payload so truncation and corruption are detected
before unpickling) live in :mod:`repro.search.storage`, shared with the
serving layer's persistent simulation cache — one hardened writer for
every on-disk format.

Compatibility policy: the format version is bumped on any payload shape
change and old versions are *not* migrated — a checkpoint is a crash
artifact, not an archive. v2 added the delta-resimulation state: the
candidate set's :class:`~repro.schedule.simulator.DeltaMove` hints and
(inside ``cache_state``) the session store's parent snapshots, so a
resumed search resumes *warm* — it re-simulates nothing it already
simulated and keeps replaying candidate deltas from the restored
snapshots, bit-identically to the uninterrupted run. Resuming also re-checks that the anneal
schedule matches the one the checkpoint was written under, because
resuming under different search parameters would silently diverge from
both runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..lang.errors import BambooError
from ..schedule.layout import Layout
from .storage import StorageError, read_pickle_record, write_pickle_record

CHECKPOINT_FORMAT = "repro.search/checkpoint-v2"


class CheckpointError(BambooError):
    """A checkpoint file is missing, corrupt, or incompatible."""


@dataclass
class SearchCheckpoint:
    """Full annealing state at one iteration boundary."""

    #: completed iterations at this boundary
    iteration: int
    #: ``random.Random.getstate()`` of the annealer's RNG
    rng_state: Tuple
    best_layout: Layout
    best_cycles: int
    #: the candidate set entering the next iteration
    candidates: List[Layout]
    history: List[int]
    patience: int
    #: budget counters (real simulations / cache hits / cutoff prunes)
    evaluations: int
    cache_hits: int
    pruned_evaluations: int
    initial_layouts: List[Layout]
    #: ``SimCache.state()`` snapshot, or None when the cache is off
    cache_state: Optional[Dict[str, object]] = None
    #: periodic checkpoints written up to (and including) this boundary
    checkpoints_written: int = 0
    #: serialized CheckpointWritten events up to this boundary
    checkpoint_events: List[Dict[str, object]] = field(default_factory=list)
    #: fingerprint of the anneal schedule this state was produced under
    config_digest: str = ""
    #: per-candidate :class:`~repro.schedule.simulator.DeltaMove` hints
    #: (aligned with ``candidates``; None where a candidate has no
    #: parent). Pure cost advice — dropping them changes wall clock only.
    candidate_deltas: Optional[List[Optional[object]]] = None


def config_digest(config) -> str:
    """A stable fingerprint of an :class:`AnnealConfig`, used to refuse
    resuming under different search parameters. Checkpoint cadence fields
    are excluded — re-checkpointing differently is legal — and so is
    ``max_iterations``: it is a pure stop condition that never affects
    the per-iteration trajectory, so extending an interrupted short run
    into a longer one is a supported (and test-exercised) resume."""
    from dataclasses import asdict

    fields = asdict(config)
    fields.pop("checkpoint_every", None)
    fields.pop("max_iterations", None)
    payload = json.dumps(fields, sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def write_checkpoint(path: str, checkpoint: SearchCheckpoint) -> None:
    """Atomically serializes ``checkpoint`` to ``path``."""
    write_pickle_record(
        path,
        CHECKPOINT_FORMAT,
        checkpoint,
        extra_header={
            "iteration": checkpoint.iteration,
            "evaluations": checkpoint.evaluations,
        },
    )


def read_checkpoint(path: str) -> SearchCheckpoint:
    """Loads and verifies a checkpoint; raises :class:`CheckpointError`
    on any missing, corrupt, or incompatible file."""
    try:
        _, checkpoint = read_pickle_record(
            path,
            CHECKPOINT_FORMAT,
            expected_type=SearchCheckpoint,
            kind="checkpoint",
            long_kind="search checkpoint",
        )
    except StorageError as exc:
        raise CheckpointError(str(exc))
    return checkpoint
