"""Checkpoint/resume for directed simulated annealing.

A multi-hour search (the paper's Fig. 10 workload at scale) must survive
an interrupted process. :class:`SearchCheckpoint` captures the *complete*
annealing state at an iteration boundary — RNG state, incumbent, the
candidate set for the next iteration, budget counters, patience, history,
and the simulation cache — so
:func:`repro.schedule.anneal.directed_simulated_annealing` can resume it
and produce a run bit-identical to an uninterrupted one (test-enforced
per benchmark).

File format (``repro.search/checkpoint-v1``)
--------------------------------------------

One ASCII JSON header line, then the pickled payload::

    {"format": "repro.search/checkpoint-v1", "digest": "<sha256>", ...}\n
    <pickle bytes>

The digest covers the payload bytes, so truncation and corruption are
detected before unpickling. Writes are atomic (write ``<path>.tmp`` in
the same directory, fsync, then ``os.replace``), so a crash mid-write
leaves the previous checkpoint intact — there is never a moment with no
valid checkpoint on disk.

Compatibility policy: the format version is bumped on any payload shape
change and old versions are *not* migrated — a checkpoint is a crash
artifact, not an archive. Resuming also re-checks that the anneal
schedule matches the one the checkpoint was written under, because
resuming under different search parameters would silently diverge from
both runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..lang.errors import BambooError
from ..schedule.layout import Layout

CHECKPOINT_FORMAT = "repro.search/checkpoint-v1"


class CheckpointError(BambooError):
    """A checkpoint file is missing, corrupt, or incompatible."""


@dataclass
class SearchCheckpoint:
    """Full annealing state at one iteration boundary."""

    #: completed iterations at this boundary
    iteration: int
    #: ``random.Random.getstate()`` of the annealer's RNG
    rng_state: Tuple
    best_layout: Layout
    best_cycles: int
    #: the candidate set entering the next iteration
    candidates: List[Layout]
    history: List[int]
    patience: int
    #: budget counters (real simulations / cache hits / cutoff prunes)
    evaluations: int
    cache_hits: int
    pruned_evaluations: int
    initial_layouts: List[Layout]
    #: ``SimCache.state()`` snapshot, or None when the cache is off
    cache_state: Optional[Dict[str, object]] = None
    #: periodic checkpoints written up to (and including) this boundary
    checkpoints_written: int = 0
    #: serialized CheckpointWritten events up to this boundary
    checkpoint_events: List[Dict[str, object]] = field(default_factory=list)
    #: fingerprint of the anneal schedule this state was produced under
    config_digest: str = ""


def config_digest(config) -> str:
    """A stable fingerprint of an :class:`AnnealConfig`, used to refuse
    resuming under different search parameters. Checkpoint cadence fields
    are excluded — re-checkpointing differently is legal — and so is
    ``max_iterations``: it is a pure stop condition that never affects
    the per-iteration trajectory, so extending an interrupted short run
    into a longer one is a supported (and test-exercised) resume."""
    from dataclasses import asdict

    fields = asdict(config)
    fields.pop("checkpoint_every", None)
    fields.pop("max_iterations", None)
    payload = json.dumps(fields, sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def write_checkpoint(path: str, checkpoint: SearchCheckpoint) -> None:
    """Atomically serializes ``checkpoint`` to ``path``."""
    payload = pickle.dumps(checkpoint, protocol=pickle.HIGHEST_PROTOCOL)
    header = {
        "format": CHECKPOINT_FORMAT,
        "digest": hashlib.sha256(payload).hexdigest(),
        "iteration": checkpoint.iteration,
        "evaluations": checkpoint.evaluations,
    }
    directory = os.path.dirname(os.path.abspath(path))
    temp = path + ".tmp"
    with open(temp, "wb") as handle:
        handle.write(json.dumps(header, sort_keys=True).encode("ascii"))
        handle.write(b"\n")
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)
    # Persist the rename too, so the checkpoint survives a host crash.
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover - fsync on dirs unsupported
        pass
    finally:
        os.close(dir_fd)


def read_checkpoint(path: str) -> SearchCheckpoint:
    """Loads and verifies a checkpoint; raises :class:`CheckpointError`
    on any missing, corrupt, or incompatible file."""
    try:
        with open(path, "rb") as handle:
            header_line = handle.readline()
            payload = handle.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}")
    try:
        header = json.loads(header_line.decode("ascii"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        raise CheckpointError(f"{path!r} is not a search checkpoint")
    found = header.get("format")
    if found != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"{path!r} has checkpoint format {found!r}, expected "
            f"{CHECKPOINT_FORMAT!r} (old formats are not migrated)"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("digest"):
        raise CheckpointError(
            f"{path!r} is corrupt: payload digest mismatch "
            f"(expected {header.get('digest')}, got {digest})"
        )
    try:
        checkpoint = pickle.loads(payload)
    except Exception as exc:
        raise CheckpointError(f"cannot unpickle checkpoint {path!r}: {exc}")
    if not isinstance(checkpoint, SearchCheckpoint):
        raise CheckpointError(
            f"{path!r} does not contain a SearchCheckpoint"
        )
    return checkpoint
