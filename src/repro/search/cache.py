"""Simulation memoization for the layout search (:mod:`repro.search`).

The DSA loop re-visits layouts constantly — kept candidates are re-scored
every iteration, random restarts regenerate earlier layouts, and field
re-optimization re-synthesizes against similar profiles. Each visit costs
a full scheduling simulation. :class:`SimCache` memoizes ``SimResult``s
keyed by the exact layout fingerprint
(:func:`repro.schedule.mapping.layout_fingerprint`), so a layout is
simulated at most once per (profile, hints, speeds) context — across
iterations, across restarts, and (when one cache instance is shared)
across whole synthesis runs.

Entries produced under an early cutoff are *lower bounds*: the simulation
stopped as soon as the clock passed the incumbent best. A bound entry
satisfies a later lookup only if it still proves the layout loses at that
lookup's cutoff; otherwise it counts as a miss and the layout is
re-simulated (and the entry upgraded).

Hit / miss / eviction / bound-upgrade counts are kept both as plain
integers and, when a :class:`repro.obs.MetricsRegistry` is attached, as
``sim_cache_*`` counters so they export through the observability
pipeline alongside machine metrics.

The cache is safe for concurrent use: one :mod:`repro.serve` daemon
shares an instance across request-handler threads, so every LRU mutation
and counter delta (including the registry replay) happens under one
re-entrant lock, and :meth:`cache_stats` takes its whole snapshot inside
it — a reader never observes a half-applied update (e.g. a hit counted
but the entry not yet moved to the LRU tail). The single-threaded anneal
loop pays only an uncontended-lock acquire per lookup.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, TYPE_CHECKING

from ..schedule.simulator import SessionStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.metrics import MetricsRegistry
    from ..schedule.simulator import SimResult


@dataclass
class CacheEntry:
    """One memoized simulation outcome."""

    cycles: int
    result: "SimResult"
    #: the entry is a lower bound (simulation stopped at an early cutoff)
    pruned: bool = False


class SimCache:
    """An LRU-bounded memo of layout-fingerprint → simulation outcome."""

    def __init__(
        self,
        max_entries: Optional[int] = None,
        registry: Optional["MetricsRegistry"] = None,
    ):
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive or None")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: misses caused by a bound entry that could not answer the lookup
        self.bound_misses = 0
        self.registry = registry
        #: guards the LRU order, the counters, and their registry deltas
        #: (re-entrant: restore() counts deltas while already holding it)
        self._lock = threading.RLock()
        #: delta-session parent records (snapshots for incremental
        #: re-simulation) living beside the result entries. They share the
        #: cache's lifetime, not its LRU: records are bulky, so the store
        #: keeps its own small bound. Excluded from the default state()
        #: so disk-persisted caches (repro.serve) carry results only.
        self.sessions = SessionStore()

    # -- instrumentation -----------------------------------------------------

    def _count(self, name: str) -> None:
        if self.registry is not None:
            self.registry.counter(f"sim_cache_{name}").inc()

    # -- the memo ------------------------------------------------------------

    def get(
        self, fingerprint: str, cutoff: Optional[int] = None
    ) -> Optional[CacheEntry]:
        """Returns the entry for ``fingerprint`` if it can answer a lookup
        evaluated under ``cutoff``, else ``None`` (a miss).

        An exact entry always answers. A bound entry (pruned at some
        earlier cutoff, observed total ``cycles``) answers only when the
        current cutoff is still below its observed total — then the true
        makespan provably exceeds the cutoff and the layout loses without
        re-simulation.
        """
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.misses += 1
                self._count("misses")
                return None
            if entry.pruned and (cutoff is None or cutoff >= entry.cycles):
                # The bound no longer proves anything: the caller needs
                # either the exact value or a deeper bound. Re-simulate.
                self.misses += 1
                self.bound_misses += 1
                self._count("misses")
                self._count("bound_misses")
                return None
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            self._count("hits")
            return entry

    def put(self, fingerprint: str, entry: CacheEntry) -> None:
        with self._lock:
            existing = self._entries.get(fingerprint)
            if existing is not None and not existing.pruned and entry.pruned:
                # Never downgrade an exact result to a bound.
                return
            self._entries[fingerprint] = entry
            self._entries.move_to_end(fingerprint)
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self.evictions += 1
                    self._count("evictions")

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # -- checkpoint support --------------------------------------------------

    def state(self, include_sessions: bool = False) -> Dict[str, object]:
        """A restorable snapshot of the cache: entries (in LRU order) plus
        every counter.

        Entries are shared by reference — ``put`` replaces entry objects
        and never mutates them, so a snapshot taken at an iteration
        boundary stays valid even while the search keeps inserting. The
        annealer captures one per boundary so an interrupt mid-iteration
        can checkpoint the boundary state, not the half-mutated one.

        ``include_sessions=True`` adds the delta-session store (immutable
        parent records, also by reference) — search checkpoints want it so
        a resumed run re-simulates nothing; the serving layer's disk
        persistence deliberately leaves it out.
        """
        with self._lock:
            state: Dict[str, object] = {
                "entries": list(self._entries.items()),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "bound_misses": self.bound_misses,
            }
            if include_sessions:
                state["sessions"] = self.sessions.state()
            return state

    def restore(self, state: Dict[str, object]) -> None:
        """Restores a :meth:`state` snapshot, counters included, so a
        resumed search reports bit-identical cache statistics."""
        with self._lock:
            self._entries = OrderedDict(state["entries"])
            if self.registry is not None:
                # Replay the restored totals into the attached registry so
                # the ``sim_cache_*`` counters of a resumed run match an
                # uninterrupted one (a resumed synthesis starts with a
                # fresh registry but a warm cache).
                for name in ("hits", "misses", "evictions", "bound_misses"):
                    delta = state[name] - getattr(self, name)
                    if delta > 0:
                        self.registry.counter(f"sim_cache_{name}").inc(delta)
            self.hits = state["hits"]
            self.misses = state["misses"]
            self.evictions = state["evictions"]
            self.bound_misses = state["bound_misses"]
            sessions = state.get("sessions")
            if sessions is not None:
                self.sessions.restore(sessions)

    # -- reporting -----------------------------------------------------------

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def cache_stats(self) -> Dict[str, object]:
        """A JSON-ready snapshot of the cache counters, taken atomically.

        The whole snapshot is read under the cache lock, so it is
        internally consistent even while other threads are hitting the
        cache: ``lookups == hits + misses`` holds in every snapshot, never
        just between updates.
        """
        with self._lock:
            hits, misses = self.hits, self.misses
            lookups = hits + misses
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "lookups": lookups,
                "hits": hits,
                "misses": misses,
                "bound_misses": self.bound_misses,
                "evictions": self.evictions,
                "hit_rate": hits / lookups if lookups else 0.0,
            }

    def stats(self) -> Dict[str, object]:
        """Alias of :meth:`cache_stats`, kept for existing callers."""
        return self.cache_stats()
