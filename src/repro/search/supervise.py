"""Worker supervision for the parallel layout search.

:class:`~repro.search.evaluator.ParallelEvaluator` trusts its workers: it
blocks on ``future.result()`` with no timeout, and a worker killed by the
OS (OOM, ``kill -9``) surfaces as an unhandled ``BrokenProcessPool`` that
loses the whole search. :class:`SupervisedEvaluator` closes that gap the
same way :mod:`repro.resilience` does for the simulated machine —
detection, bounded retry, and graceful degradation — at the host level:

* **Deadlines** — every dispatched simulation gets a wall-clock deadline
  derived from an EWMA of observed simulation times (×
  :attr:`RetryPolicy.timeout_mult`), floored at
  :attr:`RetryPolicy.timeout_floor` for cold starts. A breach means the
  worker hung (or the pool starved) and triggers recovery.
* **Retry with backoff** — failed dispatches are re-submitted up to
  :attr:`RetryPolicy.max_retries` times, with exponential backoff and a
  deterministic jitter between rounds. Because simulation is
  deterministic, a retried result is bit-identical to the one the lost
  worker would have produced — supervision cannot change search results,
  only rescue them.
* **Pool rebuild** — a ``BrokenProcessPool`` or deadline breach tears the
  pool down (terminating stragglers) and rebuilds it; after
  :attr:`RetryPolicy.max_pool_failures` consecutive failures without
  progress the evaluator degrades permanently to in-process serial
  simulation, which needs no pool at all.
* **Per-task serial fallback** — a single task that exhausts its retries
  is simulated in-process; if it *still* fails, that is a real error and
  propagates with the layout's batch position attached
  (:class:`~repro.search.evaluator.EvaluationError`).

The PR 4 batch-determinism contract is preserved: results are collected
per input position and every position is eventually filled (or a real
error raised), so a supervised run with any number of worker failures is
bit-identical to a fault-free one.

Host-chaos injection (:mod:`repro.search.hostchaos`) plugs in here: the
supervisor numbers every pool dispatch with a global sequence id and asks
the plan whether that dispatch should crash (``os._exit`` inside the
worker) or hang (sleep past its deadline).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

try:  # pragma: no cover - present on every supported runtime
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover - defensive
    BrokenProcessPool = OSError  # type: ignore[assignment,misc]

from ..obs import prof
from ..obs.events import Event, PoolRebuild, WorkerRetry
from ..schedule.layout import Layout
from ..schedule.simulator import DeltaMove, SimResult
from . import retry
from .cache import SimCache
from .evaluator import (
    EvaluationError,
    ParallelEvaluator,
    SerialEvaluator,
    _C_POOL_DISPATCHES,
    _P_COMPUTE,
    _ChunkItemError,
    _chunk_bounds,
    _init_worker,
    _simulate_chunk,
    _simulate_in_worker,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.api import CompiledProgram
    from ..runtime.profiler import ProfileData
    from .hostchaos import HostChaosPlan

#: Upper bound on an injected hang's sleep, so a worker the parent failed
#: to terminate cannot outlive the run by more than this.
HANG_SLEEP_CAP = 30.0


@dataclass(frozen=True)
class RetryPolicy:
    """Supervision knobs for :class:`SupervisedEvaluator`.

    The per-dispatch deadline is ``max(timeout_floor, ewma *
    timeout_mult)`` where ``ewma`` tracks observed simulation wall-times;
    queued dispatches get one extra deadline per full wave ahead of them,
    so a deep batch on few workers is not falsely timed out.
    """

    #: deadline = EWMA of observed simulation seconds × this
    timeout_mult: float = 16.0
    #: minimum deadline in seconds (cold pools pay interpreter spawn +
    #: context shipping on the first dispatch)
    timeout_floor: float = 5.0
    #: EWMA smoothing factor for observed wall-times
    ewma_alpha: float = 0.2
    #: pool attempts per task before it falls back to in-process simulation
    max_retries: int = 3
    #: consecutive no-progress pool failures before the evaluator degrades
    #: permanently to serial, in-process simulation
    max_pool_failures: int = 3
    #: base backoff (seconds) between failure rounds; doubles per round
    backoff_base: float = 0.05
    #: backoff ceiling in seconds
    backoff_cap: float = 2.0

    def validate(self) -> None:
        if self.timeout_mult <= 0 or self.timeout_floor <= 0:
            raise ValueError("deadline parameters must be positive")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.max_retries < 1 or self.max_pool_failures < 1:
            raise ValueError("retry bounds must be >= 1")


@dataclass
class SupervisionStats:
    """What supervision did during one evaluator's lifetime.

    Counters are exact for a fault-free run (all zero) but only bounded
    for a faulted one: how many collateral tasks a pool failure takes
    down depends on wall-clock timing, so invariants over these are
    inequalities (see :mod:`repro.search.hostchaos`). Events carry no
    wall-clock fields for the same reason.
    """

    #: pool dispatches (every submission, retries included)
    dispatches: int = 0
    #: task re-submissions after a worker failure
    worker_retries: int = 0
    #: pool teardown/rebuild cycles
    pool_rebuilds: int = 0
    #: simulations that fell back to the in-process serial path
    serial_fallbacks: int = 0
    #: chaos faults actually fired (tokens handed to workers)
    injected_crashes: int = 0
    injected_hangs: int = 0
    #: the evaluator degraded permanently to serial mode
    degraded: bool = False
    events: List[Event] = field(default_factory=list)

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready counters for the search-metrics snapshot."""
        return {
            "dispatches": self.dispatches,
            "worker_retries": self.worker_retries,
            "pool_rebuilds": self.pool_rebuilds,
            "serial_fallbacks": self.serial_fallbacks,
            "injected_crashes": self.injected_crashes,
            "injected_hangs": self.injected_hangs,
            "degraded": self.degraded,
        }


#: Deterministic jitter fraction in [0, 1) for backoff sleeps, keyed by
#: the dispatch sequence and failure round so concurrent searches do not
#: thunder in lockstep yet replays stay reproducible. Shared with the
#: serve client and the dist lease layer via :mod:`repro.search.retry`.
_jitter = retry.jitter


def _chaos_simulate(
    layout: Layout, cutoff: Optional[int], chaos: Optional[Tuple[str, float]]
) -> Tuple[float, SimResult]:
    """Single-layout supervised worker entry point: optionally misbehave,
    then simulate and report the observed wall-time for the EWMA."""
    if chaos is not None:
        kind, seconds = chaos
        if kind == "crash":
            os._exit(3)
        elif kind == "hang":
            time.sleep(min(seconds, HANG_SLEEP_CAP))
    started = time.monotonic()
    result = _simulate_in_worker(layout, cutoff)
    return time.monotonic() - started, result


def _chaos_simulate_chunk(
    items: Sequence[Tuple[Layout, Optional[DeltaMove]]],
    cutoff: Optional[int],
    chaos: Optional[Tuple[str, float]],
) -> Tuple[float, List[SimResult]]:
    """The supervised chunk entry point: optionally misbehave, then
    simulate the whole chunk and report its observed wall-time."""
    if chaos is not None:
        kind, seconds = chaos
        if kind == "crash":
            os._exit(3)
        elif kind == "hang":
            time.sleep(min(seconds, HANG_SLEEP_CAP))
    started = time.monotonic()
    results = _simulate_chunk(items, cutoff)
    return time.monotonic() - started, results


class SupervisedEvaluator(ParallelEvaluator):
    """A :class:`ParallelEvaluator` that survives worker crashes and hangs.

    Same constructor as the parent plus a :class:`RetryPolicy` and an
    optional :class:`~repro.search.hostchaos.HostChaosPlan`. Fault-free,
    it produces bit-identical results to the unsupervised evaluator (and
    to :class:`SerialEvaluator`); under injected or real worker failures
    it still does, at the cost of retries.
    """

    def __init__(
        self,
        compiled: "CompiledProgram",
        profile: "ProfileData",
        hints: Optional[Dict[str, str]] = None,
        core_speeds: Optional[Dict[int, float]] = None,
        cache: Optional[SimCache] = None,
        workers: int = 2,
        policy: Optional[RetryPolicy] = None,
        chaos: Optional["HostChaosPlan"] = None,
        delta: bool = True,
    ):
        super().__init__(
            compiled, profile, hints=hints, core_speeds=core_speeds,
            cache=cache, workers=workers, delta=delta,
        )
        self.policy = policy or RetryPolicy()
        self.policy.validate()
        self.chaos = chaos
        self.stats = SupervisionStats()
        self._ewma: Optional[float] = None
        self._dispatch_seq = 0
        self._serial_mode = False
        self._consecutive_pool_failures = 0
        self._pending: List[int] = []

    # -- deadline model ------------------------------------------------------

    def _deadline(self) -> float:
        """Per-dispatch deadline in seconds, from the observed EWMA."""
        if self._ewma is None:
            return self.policy.timeout_floor
        return max(
            self.policy.timeout_floor, self._ewma * self.policy.timeout_mult
        )

    def _observe(self, elapsed: float) -> None:
        alpha = self.policy.ewma_alpha
        self._ewma = (
            elapsed
            if self._ewma is None
            else alpha * elapsed + (1.0 - alpha) * self._ewma
        )

    # -- pool lifecycle ------------------------------------------------------

    def _teardown_pool(self) -> None:
        """Tears the pool down without waiting on hung workers."""
        executor, self._executor = self._executor, None
        if executor is None:
            return
        processes = list(getattr(executor, "_processes", {}).values())
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except TypeError:  # pragma: no cover - py < 3.9 fallback
            executor.shutdown(wait=False)
        for process in processes:
            try:
                process.terminate()
            except Exception:  # pragma: no cover - already dead
                pass

    def close(self) -> None:
        self._teardown_pool()

    def _handle_pool_failure(self, reason: str, retried: int) -> None:
        """One failure round: account, rebuild (or degrade), back off."""
        self._consecutive_pool_failures += 1
        self.stats.pool_rebuilds += 1
        self.stats.events.append(
            PoolRebuild(
                time=self._dispatch_seq,
                consecutive=self._consecutive_pool_failures,
                reason=reason,
            )
        )
        self._teardown_pool()
        if self._consecutive_pool_failures >= self.policy.max_pool_failures:
            self._serial_mode = True
            self.stats.degraded = True
            return
        round_index = self._consecutive_pool_failures
        time.sleep(
            retry.backoff_delay(
                self.policy.backoff_base,
                self.policy.backoff_cap,
                round_index,
                self._dispatch_seq,
                low=1.0,
                high=2.0,
            )
        )

    # -- chaos ---------------------------------------------------------------

    def _chaos_token(self, deadline: float) -> Optional[Tuple[str, float]]:
        """The fault (if any) the chaos plan designates for the dispatch
        about to be numbered ``self._dispatch_seq``."""
        if self.chaos is None:
            return None
        kind = self.chaos.kind_for(self._dispatch_seq)
        if kind is None:
            return None
        if kind == "crash":
            self.stats.injected_crashes += 1
            return ("crash", 0.0)
        self.stats.injected_hangs += 1
        # Sleep comfortably past the batch's most generous allowance so
        # the breach is detected, not raced.
        return ("hang", deadline * (1.0 + len(self._pending or [])))

    # -- the supervised batch ------------------------------------------------

    def _serial_one(self, position: int, total: int, layout: Layout,
                    cutoff: Optional[int],
                    delta: Optional[DeltaMove] = None) -> SimResult:
        """In-process ground truth; a failure here is a real error."""
        self.stats.serial_fallbacks += 1
        try:
            return SerialEvaluator._simulate(self, [layout], cutoff,
                                             [delta])[0]
        except Exception as exc:
            raise EvaluationError(position, total, exc) from exc

    def _simulate(
        self,
        layouts: Sequence[Layout],
        cutoff: Optional[int],
        deltas: Optional[Sequence[Optional[DeltaMove]]] = None,
    ) -> List[SimResult]:
        if not layouts:
            return []
        policy = self.policy
        total = len(layouts)
        if deltas is None:
            deltas = [None] * total
        results: List[Optional[SimResult]] = [None] * total
        attempts = [0] * total
        profiler = prof.active()
        # Worker wall-time harvested from completed dispatches; attributed
        # non-exclusively so the parent's dispatch self time stays the
        # IPC + supervision overhead (serial fallbacks compute in-process
        # and are therefore already inside the dispatch wall).
        compute_ns = 0
        compute_count = 0
        self._pending: List[int] = list(range(total))
        try:
            while self._pending:
                pending = self._pending
                if self._serial_mode:
                    for index in pending:
                        results[index] = self._serial_one(
                            index, total, layouts[index], cutoff,
                            deltas[index],
                        )
                    break
                # Tasks out of pool retries take the in-process path.
                exhausted = [
                    i for i in pending if attempts[i] >= policy.max_retries
                ]
                for index in exhausted:
                    results[index] = self._serial_one(
                        index, total, layouts[index], cutoff, deltas[index]
                    )
                pending = [i for i in pending if results[i] is None]
                self._pending = pending
                if not pending:
                    break

                # The retry unit is a *chunk* (the same wave shape the
                # unsupervised evaluator dispatches): one chaos token,
                # deadline, and re-submission decision per chunk; retry
                # attempts and fallbacks stay accounted per layout.
                chunks = [
                    pending[start:stop]
                    for start, stop in _chunk_bounds(len(pending),
                                                     self.workers)
                ]
                deadline = self._deadline()
                failure: Optional[str] = None
                futures = {}
                try:
                    pool = self._pool()
                    for chunk_id, member_indices in enumerate(chunks):
                        token = self._chaos_token(deadline)
                        items = [
                            (layouts[i], deltas[i]) for i in member_indices
                        ]
                        futures[chunk_id] = pool.submit(
                            _chaos_simulate_chunk, items, cutoff, token
                        )
                        for index in member_indices:
                            attempts[index] += 1
                        self._dispatch_seq += 1
                        self.stats.dispatches += 1
                except (BrokenProcessPool, OSError, RuntimeError):
                    # The pool died before the batch was even in flight.
                    failure = "broken"

                collected: List[int] = []

                def harvest(member_indices, chunk_results, elapsed):
                    nonlocal compute_ns, compute_count
                    # One elapsed covers the whole chunk; the EWMA tracks
                    # per-simulation time, so observe the average.
                    self._observe(elapsed / max(1, len(member_indices)))
                    compute_ns += int(elapsed * 1e9)
                    compute_count += len(member_indices)
                    for index, result in zip(member_indices, chunk_results):
                        results[index] = result
                        collected.append(index)

                if failure is None:
                    started = time.monotonic()
                    for rank, member_indices in enumerate(chunks):
                        allowance = (
                            deadline
                            * len(member_indices)
                            * (1 + rank // self.workers)
                        )
                        remaining = started + allowance - time.monotonic()
                        try:
                            elapsed, chunk_results = futures[rank].result(
                                timeout=max(0.0, remaining)
                            )
                        except FutureTimeout:
                            failure = "deadline"
                            break
                        except BrokenProcessPool:
                            failure = "broken"
                            break
                        except _ChunkItemError as exc:
                            raise EvaluationError(
                                member_indices[exc.offset], total, exc
                            ) from exc
                        except Exception as exc:
                            raise EvaluationError(
                                member_indices[0], total, exc
                            ) from exc
                        harvest(member_indices, chunk_results, elapsed)
                    if failure is not None:
                        # Harvest whatever else finished before the breach;
                        # a completed result is a completed result.
                        for rank, member_indices in enumerate(chunks):
                            if results[member_indices[0]] is not None:
                                continue
                            future = futures.get(rank)
                            if future is None or not future.done():
                                continue
                            try:
                                elapsed, chunk_results = future.result(
                                    timeout=0
                                )
                            except Exception:
                                continue
                            harvest(member_indices, chunk_results, elapsed)

                pending = [i for i in pending if results[i] is None]
                self._pending = pending
                if failure is None:
                    break
                if collected:
                    self._consecutive_pool_failures = 0
                for index in pending:
                    self.stats.worker_retries += 1
                    self.stats.events.append(
                        WorkerRetry(
                            time=self._dispatch_seq,
                            position=index,
                            attempt=attempts[index],
                            reason=failure,
                        )
                    )
                self._handle_pool_failure(failure, retried=len(pending))
        finally:
            self._pending = []
            if profiler is not None and compute_count:
                profiler.add_time(
                    _P_COMPUTE, compute_ns, count=compute_count, exclusive=False
                )
                profiler.add_count(_C_POOL_DISPATCHES)
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]
