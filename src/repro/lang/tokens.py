"""Token definitions for the Bamboo lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from .errors import SourceLocation


class TokenKind(enum.Enum):
    # Literals and identifiers
    IDENT = "IDENT"
    INT_LIT = "INT_LIT"
    FLOAT_LIT = "FLOAT_LIT"
    STRING_LIT = "STRING_LIT"

    # Keywords
    KW_CLASS = "class"
    KW_TASK = "task"
    KW_FLAG = "flag"
    KW_TAG = "tag"
    KW_TASKEXIT = "taskexit"
    KW_NEW = "new"
    KW_IN = "in"
    KW_WITH = "with"
    KW_AND = "and"
    KW_OR = "or"
    KW_ADD = "add"
    KW_CLEAR = "clear"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_FOR = "for"
    KW_RETURN = "return"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    KW_TRUE = "true"
    KW_FALSE = "false"
    KW_NULL = "null"
    KW_INT = "int"
    KW_FLOAT = "float"
    KW_BOOLEAN = "boolean"
    KW_STRING = "String"
    KW_VOID = "void"
    KW_THIS = "this"
    KW_STATIC = "static"

    # Punctuation / operators
    LBRACE = "{"
    RBRACE = "}"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COMMA = ","
    DOT = "."
    COLON = ":"
    ASSIGN = "="
    FLAG_ASSIGN = ":="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    EQ = "=="
    NE = "!="
    NOT = "!"
    AMPAMP = "&&"
    PIPEPIPE = "||"
    PLUSPLUS = "++"
    MINUSMINUS = "--"
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    STAR_ASSIGN = "*="
    SLASH_ASSIGN = "/="

    EOF = "EOF"


#: Maps keyword spellings to their token kinds.
KEYWORDS = {
    "class": TokenKind.KW_CLASS,
    "task": TokenKind.KW_TASK,
    "flag": TokenKind.KW_FLAG,
    "tag": TokenKind.KW_TAG,
    "taskexit": TokenKind.KW_TASKEXIT,
    "new": TokenKind.KW_NEW,
    "in": TokenKind.KW_IN,
    "with": TokenKind.KW_WITH,
    "and": TokenKind.KW_AND,
    "or": TokenKind.KW_OR,
    "add": TokenKind.KW_ADD,
    "clear": TokenKind.KW_CLEAR,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "while": TokenKind.KW_WHILE,
    "for": TokenKind.KW_FOR,
    "return": TokenKind.KW_RETURN,
    "break": TokenKind.KW_BREAK,
    "continue": TokenKind.KW_CONTINUE,
    "true": TokenKind.KW_TRUE,
    "false": TokenKind.KW_FALSE,
    "null": TokenKind.KW_NULL,
    "int": TokenKind.KW_INT,
    "float": TokenKind.KW_FLOAT,
    "double": TokenKind.KW_FLOAT,  # accepted as an alias for float
    "boolean": TokenKind.KW_BOOLEAN,
    "String": TokenKind.KW_STRING,
    "void": TokenKind.KW_VOID,
    "this": TokenKind.KW_THIS,
    "static": TokenKind.KW_STATIC,
}

#: Contextual keywords: these act as keywords only in specific grammar spots
#: (``in``, ``with``, ``and``, ``or``, ``add``, ``clear``) but the lexer still
#: classifies them as keyword tokens; the parser treats them as identifiers
#: where needed.
CONTEXTUAL_KEYWORDS = frozenset(
    {
        TokenKind.KW_IN,
        TokenKind.KW_WITH,
        TokenKind.KW_AND,
        TokenKind.KW_OR,
        TokenKind.KW_ADD,
        TokenKind.KW_CLEAR,
    }
)


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` holds the decoded payload for literals (``int``/``float``/
    ``str``) and the spelling for identifiers and keywords.
    """

    kind: TokenKind
    value: Any
    location: SourceLocation

    @property
    def spelling(self) -> str:
        if self.kind in (TokenKind.IDENT, TokenKind.STRING_LIT):
            return str(self.value)
        if self.kind in (TokenKind.INT_LIT, TokenKind.FLOAT_LIT):
            return repr(self.value)
        return self.kind.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.value!r}, {self.location})"
