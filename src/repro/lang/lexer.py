"""Hand-written lexer for the Bamboo language.

The lexer converts source text into a list of :class:`~repro.lang.tokens.Token`
objects. It handles ``//`` line comments, ``/* */`` block comments, decimal
integer and floating point literals, double-quoted string literals with the
usual escape sequences, and the full operator set of the Java-like subset.
"""

from __future__ import annotations

from typing import List

from .errors import LexError, SourceLocation
from .tokens import KEYWORDS, Token, TokenKind

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "\\": "\\",
    '"': '"',
    "'": "'",
    "0": "\0",
}

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    (":=", TokenKind.FLAG_ASSIGN),
    ("==", TokenKind.EQ),
    ("!=", TokenKind.NE),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("&&", TokenKind.AMPAMP),
    ("||", TokenKind.PIPEPIPE),
    ("++", TokenKind.PLUSPLUS),
    ("--", TokenKind.MINUSMINUS),
    ("+=", TokenKind.PLUS_ASSIGN),
    ("-=", TokenKind.MINUS_ASSIGN),
    ("*=", TokenKind.STAR_ASSIGN),
    ("/=", TokenKind.SLASH_ASSIGN),
    ("{", TokenKind.LBRACE),
    ("}", TokenKind.RBRACE),
    ("(", TokenKind.LPAREN),
    (")", TokenKind.RPAREN),
    ("[", TokenKind.LBRACKET),
    ("]", TokenKind.RBRACKET),
    (";", TokenKind.SEMI),
    (",", TokenKind.COMMA),
    (".", TokenKind.DOT),
    (":", TokenKind.COLON),
    ("=", TokenKind.ASSIGN),
    ("+", TokenKind.PLUS),
    ("-", TokenKind.MINUS),
    ("*", TokenKind.STAR),
    ("/", TokenKind.SLASH),
    ("%", TokenKind.PERCENT),
    ("<", TokenKind.LT),
    (">", TokenKind.GT),
    ("!", TokenKind.NOT),
]


class Lexer:
    """Tokenizes a single Bamboo source buffer."""

    def __init__(self, source: str, filename: str = "<input>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    def _location(self) -> SourceLocation:
        return SourceLocation(self.line, self.column, self.filename)

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index >= len(self.source):
            return ""
        return self.source[index]

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos >= len(self.source):
                return
            if self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _skip_trivia(self) -> None:
        """Skips whitespace and comments."""
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._location()
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self.pos >= len(self.source):
                        raise LexError("unterminated block comment", start)
                    self._advance()
                self._advance(2)
            else:
                return

    def _lex_number(self) -> Token:
        start = self._location()
        begin = self.pos
        while self._peek().isdigit():
            self._advance()
        is_float = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in ("e", "E") and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[begin : self.pos]
        # Accept a trailing float suffix as in Java source.
        if self._peek() in ("f", "F", "d", "D"):
            is_float = True
            self._advance()
        if is_float:
            return Token(TokenKind.FLOAT_LIT, float(text), start)
        return Token(TokenKind.INT_LIT, int(text), start)

    def _lex_string(self) -> Token:
        start = self._location()
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            ch = self._peek()
            if ch == "":
                raise LexError("unterminated string literal", start)
            if ch == "\n":
                raise LexError("newline in string literal", start)
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                esc = self._peek(1)
                if esc not in _ESCAPES:
                    raise LexError(f"unknown escape sequence '\\{esc}'", self._location())
                chars.append(_ESCAPES[esc])
                self._advance(2)
            else:
                chars.append(ch)
                self._advance()
        return Token(TokenKind.STRING_LIT, "".join(chars), start)

    def _lex_word(self) -> Token:
        start = self._location()
        begin = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[begin : self.pos]
        kind = KEYWORDS.get(text)
        if kind is None:
            return Token(TokenKind.IDENT, text, start)
        return Token(kind, text, start)

    def next_token(self) -> Token:
        """Returns the next token, or an EOF token at end of input."""
        self._skip_trivia()
        if self.pos >= len(self.source):
            return Token(TokenKind.EOF, None, self._location())
        ch = self._peek()
        if ch.isdigit():
            return self._lex_number()
        if ch == '"':
            return self._lex_string()
        if ch.isalpha() or ch == "_":
            return self._lex_word()
        for spelling, kind in _OPERATORS:
            if self.source.startswith(spelling, self.pos):
                start = self._location()
                self._advance(len(spelling))
                return Token(kind, spelling, start)
        raise LexError(f"unexpected character {ch!r}", self._location())

    def tokenize(self) -> List[Token]:
        """Tokenizes the whole buffer, including the trailing EOF token."""
        tokens: List[Token] = []
        while True:
            token = self.next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens


def tokenize(source: str, filename: str = "<input>") -> List[Token]:
    """Convenience wrapper: tokenizes ``source`` in one call."""
    return Lexer(source, filename).tokenize()
