"""Recursive-descent parser for the Bamboo language.

Implements the Java-like imperative subset plus the task grammar of Figure 5
in the paper: ``flag`` declarations, ``task`` declarations with ``in``
flag-expression guards and ``with`` tag guards, ``taskexit`` statements and
flag/tag initializers on ``new``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import ast
from .errors import ParseError, SourceLocation
from .lexer import tokenize
from .tokens import CONTEXTUAL_KEYWORDS, Token, TokenKind

_PRIMITIVE_TYPE_KINDS = {
    TokenKind.KW_INT: "int",
    TokenKind.KW_FLOAT: "float",
    TokenKind.KW_BOOLEAN: "boolean",
    TokenKind.KW_STRING: "String",
    TokenKind.KW_VOID: "void",
}

_ASSIGN_OPS = {
    TokenKind.ASSIGN: None,
    TokenKind.PLUS_ASSIGN: "+",
    TokenKind.MINUS_ASSIGN: "-",
    TokenKind.STAR_ASSIGN: "*",
    TokenKind.SLASH_ASSIGN: "/",
}


class Parser:
    """Parses a token stream into a :class:`repro.lang.ast.Program`."""

    def __init__(self, tokens: List[Token], filename: str = "<input>"):
        self.tokens = tokens
        self.pos = 0
        self.filename = filename

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _at(self, kind: TokenKind, offset: int = 0) -> bool:
        return self._peek(offset).kind is kind

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def _expect(self, kind: TokenKind, what: str = "") -> Token:
        token = self._peek()
        if token.kind is not kind:
            expected = what or kind.value
            raise ParseError(
                f"expected {expected}, found {token.spelling!r}", token.location
            )
        return self._advance()

    def _match(self, kind: TokenKind) -> Optional[Token]:
        if self._at(kind):
            return self._advance()
        return None

    def _at_name(self, offset: int = 0) -> bool:
        kind = self._peek(offset).kind
        return kind is TokenKind.IDENT or kind in CONTEXTUAL_KEYWORDS

    def _expect_name(self, what: str) -> str:
        """Accepts an identifier where a name is required. The contextual
        keywords (``in``/``with``/``and``/``or``/``add``/``clear``) are
        ordinary identifiers outside their grammar positions, so methods
        like ``add`` parse fine."""
        token = self._peek()
        if self._at_name():
            self._advance()
            return token.value
        raise ParseError(
            f"expected {what}, found {token.spelling!r}", token.location
        )

    def _loc(self) -> SourceLocation:
        return self._peek().location

    # -- program ------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        classes: List[ast.ClassDecl] = []
        tasks: List[ast.TaskDecl] = []
        while not self._at(TokenKind.EOF):
            if self._at(TokenKind.KW_CLASS):
                classes.append(self.parse_class())
            elif self._at(TokenKind.KW_TASK):
                tasks.append(self.parse_task())
            else:
                token = self._peek()
                raise ParseError(
                    f"expected 'class' or 'task' at top level, found "
                    f"{token.spelling!r}",
                    token.location,
                )
        return ast.Program(classes=classes, tasks=tasks)

    # -- class declarations --------------------------------------------------

    def parse_class(self) -> ast.ClassDecl:
        loc = self._expect(TokenKind.KW_CLASS).location
        name = self._expect_name("class name")
        self._expect(TokenKind.LBRACE)
        flags: List[str] = []
        fields: List[ast.FieldDecl] = []
        methods: List[ast.MethodDecl] = []
        while not self._at(TokenKind.RBRACE):
            if self._at(TokenKind.KW_FLAG):
                self._advance()
                flag_name = self._expect_name("flag name")
                self._expect(TokenKind.SEMI)
                flags.append(flag_name)
                continue
            is_static = self._match(TokenKind.KW_STATIC) is not None
            member_loc = self._loc()
            # Constructor: ClassName ( ... ) { ... }
            if (
                not is_static
                and self._at(TokenKind.IDENT)
                and self._peek().value == name
                and self._at(TokenKind.LPAREN, 1)
            ):
                self._advance()
                params = self.parse_params()
                body = self.parse_block()
                methods.append(
                    ast.MethodDecl(
                        return_type=ast.TypeNode("void"),
                        name=name,
                        params=params,
                        body=body,
                        is_constructor=True,
                        location=member_loc,
                    )
                )
                continue
            member_type = self.parse_type()
            member_name = self._expect_name("member name")
            if self._at(TokenKind.LPAREN):
                params = self.parse_params()
                body = self.parse_block()
                methods.append(
                    ast.MethodDecl(
                        return_type=member_type,
                        name=member_name,
                        params=params,
                        body=body,
                        is_static=is_static,
                        location=member_loc,
                    )
                )
            else:
                if is_static:
                    raise ParseError("static fields are not supported", member_loc)
                self._expect(TokenKind.SEMI)
                fields.append(
                    ast.FieldDecl(
                        field_type=member_type, name=member_name, location=member_loc
                    )
                )
        self._expect(TokenKind.RBRACE)
        return ast.ClassDecl(
            name=name, flags=flags, fields=fields, methods=methods, location=loc
        )

    def parse_params(self) -> List[ast.Param]:
        self._expect(TokenKind.LPAREN)
        params: List[ast.Param] = []
        if not self._at(TokenKind.RPAREN):
            while True:
                loc = self._loc()
                param_type = self.parse_type()
                name = self._expect_name("parameter name")
                params.append(
                    ast.Param(param_type=param_type, name=name, location=loc)
                )
                if not self._match(TokenKind.COMMA):
                    break
        self._expect(TokenKind.RPAREN)
        return params

    # -- task declarations ----------------------------------------------------

    def parse_task(self) -> ast.TaskDecl:
        loc = self._expect(TokenKind.KW_TASK).location
        name = self._expect_name("task name")
        self._expect(TokenKind.LPAREN)
        params: List[ast.TaskParam] = []
        if not self._at(TokenKind.RPAREN):
            while True:
                params.append(self.parse_task_param())
                if not self._match(TokenKind.COMMA):
                    break
        self._expect(TokenKind.RPAREN)
        body = self.parse_block()
        return ast.TaskDecl(name=name, params=params, body=body, location=loc)

    def parse_task_param(self) -> ast.TaskParam:
        loc = self._loc()
        param_type = self.parse_type()
        name = self._expect_name("parameter name")
        self._expect(TokenKind.KW_IN, "'in'")
        guard = self.parse_flag_expr()
        tag_guards: List[ast.TagGuard] = []
        if self._match(TokenKind.KW_WITH):
            while True:
                tag_type = self._expect_name("tag type")
                binding = self._expect_name("tag binding name")
                tag_guards.append(ast.TagGuard(tag_type=tag_type, binding=binding))
                if not self._match(TokenKind.KW_AND):
                    break
        return ast.TaskParam(
            param_type=param_type,
            name=name,
            guard=guard,
            tag_guards=tag_guards,
            location=loc,
        )

    # -- flag expressions ------------------------------------------------------

    def parse_flag_expr(self) -> ast.FlagExpr:
        return self._parse_flag_or()

    def _parse_flag_or(self) -> ast.FlagExpr:
        left = self._parse_flag_and()
        while self._match(TokenKind.KW_OR):
            right = self._parse_flag_and()
            left = ast.FlagOr(left, right)
        return left

    def _parse_flag_and(self) -> ast.FlagExpr:
        left = self._parse_flag_unary()
        while self._match(TokenKind.KW_AND):
            right = self._parse_flag_unary()
            left = ast.FlagAnd(left, right)
        return left

    def _parse_flag_unary(self) -> ast.FlagExpr:
        if self._match(TokenKind.NOT):
            return ast.FlagNot(self._parse_flag_unary())
        if self._match(TokenKind.LPAREN):
            inner = self.parse_flag_expr()
            self._expect(TokenKind.RPAREN)
            return inner
        if self._match(TokenKind.KW_TRUE):
            return ast.FlagConst(True)
        if self._match(TokenKind.KW_FALSE):
            return ast.FlagConst(False)
        token = self._peek()
        if token.kind is TokenKind.IDENT or token.kind in (
            TokenKind.KW_ADD,
            TokenKind.KW_CLEAR,
            TokenKind.KW_IN,
            TokenKind.KW_WITH,
        ):
            self._advance()
            return ast.FlagRef(token.value)
        raise ParseError(
            f"expected a flag name, found {token.spelling!r}", token.location
        )

    # -- types ------------------------------------------------------------------

    def _type_starts_here(self, offset: int = 0) -> bool:
        kind = self._peek(offset).kind
        return kind in _PRIMITIVE_TYPE_KINDS or kind is TokenKind.IDENT

    def parse_type(self) -> ast.TypeNode:
        token = self._peek()
        if token.kind in _PRIMITIVE_TYPE_KINDS:
            self._advance()
            name = _PRIMITIVE_TYPE_KINDS[token.kind]
        elif token.kind is TokenKind.IDENT:
            self._advance()
            name = token.value
        else:
            raise ParseError(f"expected a type, found {token.spelling!r}", token.location)
        dims = 0
        while self._at(TokenKind.LBRACKET) and self._at(TokenKind.RBRACKET, 1):
            self._advance()
            self._advance()
            dims += 1
        return ast.TypeNode(name, dims)

    # -- statements ----------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        loc = self._expect(TokenKind.LBRACE).location
        statements: List[ast.Stmt] = []
        while not self._at(TokenKind.RBRACE):
            statements.append(self.parse_statement())
        self._expect(TokenKind.RBRACE)
        return ast.Block(statements=statements, location=loc)

    def parse_statement(self) -> ast.Stmt:
        token = self._peek()
        kind = token.kind
        if kind is TokenKind.LBRACE:
            return self.parse_block()
        if kind is TokenKind.KW_IF:
            return self._parse_if()
        if kind is TokenKind.KW_WHILE:
            return self._parse_while()
        if kind is TokenKind.KW_FOR:
            return self._parse_for()
        if kind is TokenKind.KW_RETURN:
            self._advance()
            value = None
            if not self._at(TokenKind.SEMI):
                value = self.parse_expr()
            self._expect(TokenKind.SEMI)
            return ast.ReturnStmt(value=value, location=token.location)
        if kind is TokenKind.KW_BREAK:
            self._advance()
            self._expect(TokenKind.SEMI)
            return ast.BreakStmt(location=token.location)
        if kind is TokenKind.KW_CONTINUE:
            self._advance()
            self._expect(TokenKind.SEMI)
            return ast.ContinueStmt(location=token.location)
        if kind is TokenKind.KW_TASKEXIT:
            return self._parse_taskexit()
        if kind is TokenKind.KW_TAG:
            return self._parse_tag_decl()
        stmt = self._parse_simple_statement()
        self._expect(TokenKind.SEMI)
        return stmt

    def _parse_if(self) -> ast.Stmt:
        loc = self._expect(TokenKind.KW_IF).location
        self._expect(TokenKind.LPAREN)
        cond = self.parse_expr()
        self._expect(TokenKind.RPAREN)
        then_branch = self.parse_statement()
        else_branch = None
        if self._match(TokenKind.KW_ELSE):
            else_branch = self.parse_statement()
        return ast.IfStmt(
            cond=cond, then_branch=then_branch, else_branch=else_branch, location=loc
        )

    def _parse_while(self) -> ast.Stmt:
        loc = self._expect(TokenKind.KW_WHILE).location
        self._expect(TokenKind.LPAREN)
        cond = self.parse_expr()
        self._expect(TokenKind.RPAREN)
        body = self.parse_statement()
        return ast.WhileStmt(cond=cond, body=body, location=loc)

    def _parse_for(self) -> ast.Stmt:
        loc = self._expect(TokenKind.KW_FOR).location
        self._expect(TokenKind.LPAREN)
        init: Optional[ast.Stmt] = None
        if not self._at(TokenKind.SEMI):
            init = self._parse_simple_statement()
        self._expect(TokenKind.SEMI)
        cond: Optional[ast.Expr] = None
        if not self._at(TokenKind.SEMI):
            cond = self.parse_expr()
        self._expect(TokenKind.SEMI)
        update: Optional[ast.Stmt] = None
        if not self._at(TokenKind.RPAREN):
            update = self._parse_simple_statement()
        self._expect(TokenKind.RPAREN)
        body = self.parse_statement()
        return ast.ForStmt(init=init, cond=cond, update=update, body=body, location=loc)

    def _parse_tag_decl(self) -> ast.Stmt:
        loc = self._expect(TokenKind.KW_TAG).location
        name = self._expect_name("tag variable name")
        self._expect(TokenKind.ASSIGN)
        self._expect(TokenKind.KW_NEW)
        self._expect(TokenKind.KW_TAG, "'tag'")
        self._expect(TokenKind.LPAREN)
        tag_type = self._expect_name("tag type")
        self._expect(TokenKind.RPAREN)
        self._expect(TokenKind.SEMI)
        return ast.TagDeclStmt(name=name, tag_type=tag_type, location=loc)

    def _parse_taskexit(self) -> ast.Stmt:
        loc = self._expect(TokenKind.KW_TASKEXIT).location
        actions: List[Tuple[str, List[object]]] = []
        if self._match(TokenKind.LPAREN):
            if not self._at(TokenKind.RPAREN):
                while True:
                    param = self._expect_name("parameter name")
                    self._expect(TokenKind.COLON)
                    param_actions = [self._parse_flag_or_tag_action()]
                    while self._match(TokenKind.COMMA):
                        param_actions.append(self._parse_flag_or_tag_action())
                    actions.append((param, param_actions))
                    if not self._match(TokenKind.SEMI):
                        break
            self._expect(TokenKind.RPAREN)
        self._expect(TokenKind.SEMI)
        return ast.TaskExitStmt(actions=actions, location=loc)

    def _parse_flag_or_tag_action(self) -> object:
        # "add t" / "clear t" win over a flag literally named "add"/"clear"
        # when followed by a name (the grammar's resolution of Fig. 5).
        if self._at(TokenKind.KW_ADD) and self._at_name(1):
            self._advance()
            tag_var = self._expect_name("tag variable")
            return ast.TagAction(op="add", tag_var=tag_var)
        if self._at(TokenKind.KW_CLEAR) and self._at_name(1):
            self._advance()
            tag_var = self._expect_name("tag variable")
            return ast.TagAction(op="clear", tag_var=tag_var)
        flag = self._expect_name("flag name")
        self._expect(TokenKind.FLAG_ASSIGN, "':='")
        token = self._peek()
        if self._match(TokenKind.KW_TRUE):
            return ast.FlagAction(flag=flag, value=True)
        if self._match(TokenKind.KW_FALSE):
            return ast.FlagAction(flag=flag, value=False)
        raise ParseError("expected 'true' or 'false' after ':='", token.location)

    def _parse_simple_statement(self) -> ast.Stmt:
        """Parses a declaration, assignment, or expression statement (without
        the trailing semicolon, so it is reusable inside ``for`` headers)."""
        if self._looks_like_declaration():
            loc = self._loc()
            var_type = self.parse_type()
            name = self._expect_name("variable name")
            init = None
            if self._match(TokenKind.ASSIGN):
                init = self.parse_expr()
            return ast.VarDeclStmt(var_type=var_type, name=name, init=init, location=loc)
        loc = self._loc()
        expr = self.parse_expr()
        token = self._peek()
        if token.kind in _ASSIGN_OPS:
            op = _ASSIGN_OPS[token.kind]
            self._advance()
            value = self.parse_expr()
            if op is not None:
                value = ast.Binary(op=op, left=expr, right=value, location=token.location)
            return ast.AssignStmt(target=expr, value=value, location=loc)
        if token.kind is TokenKind.PLUSPLUS or token.kind is TokenKind.MINUSMINUS:
            self._advance()
            op = "+" if token.kind is TokenKind.PLUSPLUS else "-"
            one = ast.IntLit(value=1, location=token.location)
            value = ast.Binary(op=op, left=expr, right=one, location=token.location)
            return ast.AssignStmt(target=expr, value=value, location=loc)
        return ast.ExprStmt(expr=expr, location=loc)

    def _looks_like_declaration(self) -> bool:
        """Decides whether the upcoming tokens start a variable declaration.

        Handles the ambiguity between ``Foo[] x`` (a declaration) and
        ``foo[i] = v`` (an assignment): after the base type name, ``[`` must
        be immediately followed by ``]`` for this to be a declaration.
        """
        kind = self._peek().kind
        if kind in _PRIMITIVE_TYPE_KINDS and kind is not TokenKind.KW_VOID:
            return True
        if kind is TokenKind.KW_VOID:
            return False
        if kind is not TokenKind.IDENT:
            return False
        offset = 1
        while (
            self._at(TokenKind.LBRACKET, offset)
            and self._at(TokenKind.RBRACKET, offset + 1)
        ):
            offset += 2
        return self._at_name(offset)

    # -- expressions -------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._at(TokenKind.PIPEPIPE):
            loc = self._advance().location
            right = self._parse_and()
            left = ast.Binary(op="||", left=left, right=right, location=loc)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_equality()
        while self._at(TokenKind.AMPAMP):
            loc = self._advance().location
            right = self._parse_equality()
            left = ast.Binary(op="&&", left=left, right=right, location=loc)
        return left

    def _parse_equality(self) -> ast.Expr:
        left = self._parse_relational()
        while self._at(TokenKind.EQ) or self._at(TokenKind.NE):
            token = self._advance()
            right = self._parse_relational()
            left = ast.Binary(
                op=token.kind.value, left=left, right=right, location=token.location
            )
        return left

    def _parse_relational(self) -> ast.Expr:
        left = self._parse_additive()
        while self._peek().kind in (
            TokenKind.LT,
            TokenKind.GT,
            TokenKind.LE,
            TokenKind.GE,
        ):
            token = self._advance()
            right = self._parse_additive()
            left = ast.Binary(
                op=token.kind.value, left=left, right=right, location=token.location
            )
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._at(TokenKind.PLUS) or self._at(TokenKind.MINUS):
            token = self._advance()
            right = self._parse_multiplicative()
            left = ast.Binary(
                op=token.kind.value, left=left, right=right, location=token.location
            )
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self._peek().kind in (
            TokenKind.STAR,
            TokenKind.SLASH,
            TokenKind.PERCENT,
        ):
            token = self._advance()
            right = self._parse_unary()
            left = ast.Binary(
                op=token.kind.value, left=left, right=right, location=token.location
            )
        return left

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.MINUS:
            self._advance()
            return ast.Unary(op="-", operand=self._parse_unary(), location=token.location)
        if token.kind is TokenKind.NOT:
            self._advance()
            return ast.Unary(op="!", operand=self._parse_unary(), location=token.location)
        # Primitive cast: (int) x / (float) x
        if token.kind is TokenKind.LPAREN and self._peek(1).kind in (
            TokenKind.KW_INT,
            TokenKind.KW_FLOAT,
        ):
            if self._at(TokenKind.RPAREN, 2):
                self._advance()
                type_token = self._advance()
                self._advance()
                target = ast.TypeNode(_PRIMITIVE_TYPE_KINDS[type_token.kind])
                return ast.Cast(
                    target=target, operand=self._parse_unary(), location=token.location
                )
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.kind is TokenKind.DOT:
                self._advance()
                name = self._expect_name("member name after '.'")
                if self._at(TokenKind.LPAREN):
                    args = self._parse_call_args()
                    expr = ast.MethodCall(
                        receiver=expr, name=name, args=args, location=token.location
                    )
                else:
                    expr = ast.FieldAccess(
                        receiver=expr, field_name=name, location=token.location
                    )
            elif token.kind is TokenKind.LBRACKET:
                self._advance()
                index = self.parse_expr()
                self._expect(TokenKind.RBRACKET)
                expr = ast.ArrayIndex(array=expr, index=index, location=token.location)
            else:
                return expr

    def _parse_call_args(self) -> List[ast.Expr]:
        self._expect(TokenKind.LPAREN)
        args: List[ast.Expr] = []
        if not self._at(TokenKind.RPAREN):
            while True:
                args.append(self.parse_expr())
                if not self._match(TokenKind.COMMA):
                    break
        self._expect(TokenKind.RPAREN)
        return args

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        kind = token.kind
        if kind is TokenKind.INT_LIT:
            self._advance()
            return ast.IntLit(value=token.value, location=token.location)
        if kind is TokenKind.FLOAT_LIT:
            self._advance()
            return ast.FloatLit(value=token.value, location=token.location)
        if kind is TokenKind.STRING_LIT:
            self._advance()
            return ast.StringLit(value=token.value, location=token.location)
        if kind is TokenKind.KW_TRUE:
            self._advance()
            return ast.BoolLit(value=True, location=token.location)
        if kind is TokenKind.KW_FALSE:
            self._advance()
            return ast.BoolLit(value=False, location=token.location)
        if kind is TokenKind.KW_NULL:
            self._advance()
            return ast.NullLit(location=token.location)
        if kind is TokenKind.KW_THIS:
            self._advance()
            return ast.ThisRef(location=token.location)
        if kind is TokenKind.KW_NEW:
            return self._parse_new()
        if kind is TokenKind.LPAREN:
            self._advance()
            expr = self.parse_expr()
            self._expect(TokenKind.RPAREN)
            return expr
        if (
            kind is TokenKind.IDENT
            or kind is TokenKind.KW_STRING
            or kind in CONTEXTUAL_KEYWORDS
        ):
            self._advance()
            name = token.value
            if self._at(TokenKind.LPAREN):
                args = self._parse_call_args()
                return ast.MethodCall(
                    receiver=None, name=name, args=args, location=token.location
                )
            return ast.VarRef(name=name, location=token.location)
        raise ParseError(f"unexpected token {token.spelling!r}", token.location)

    def _parse_new(self) -> ast.Expr:
        loc = self._expect(TokenKind.KW_NEW).location
        type_token = self._peek()
        if type_token.kind in _PRIMITIVE_TYPE_KINDS and type_token.kind is not TokenKind.KW_VOID:
            self._advance()
            elem_name = _PRIMITIVE_TYPE_KINDS[type_token.kind]
            return self._parse_new_array(elem_name, loc)
        class_name = self._expect_name("class name")
        if self._at(TokenKind.LBRACKET):
            return self._parse_new_array(class_name, loc)
        args = self._parse_call_args()
        flag_inits: List[ast.FlagAction] = []
        tag_inits: List[ast.TagAction] = []
        if self._match(TokenKind.LBRACE):
            if not self._at(TokenKind.RBRACE):
                while True:
                    action = self._parse_flag_or_tag_action()
                    if isinstance(action, ast.FlagAction):
                        flag_inits.append(action)
                    else:
                        tag_inits.append(action)
                    if not self._match(TokenKind.COMMA):
                        break
            self._expect(TokenKind.RBRACE)
        return ast.NewObject(
            class_name=class_name,
            args=args,
            flag_inits=flag_inits,
            tag_inits=tag_inits,
            location=loc,
        )

    def _parse_new_array(self, elem_name: str, loc: SourceLocation) -> ast.Expr:
        dims: List[ast.Expr] = []
        extra_dims = 0
        while self._at(TokenKind.LBRACKET):
            self._advance()
            if self._at(TokenKind.RBRACKET):
                self._advance()
                extra_dims += 1
            else:
                if extra_dims:
                    raise ParseError(
                        "cannot specify a dimension after an empty one", self._loc()
                    )
                dims.append(self.parse_expr())
                self._expect(TokenKind.RBRACKET)
        if not dims:
            raise ParseError("array allocation needs at least one sized dimension", loc)
        return ast.NewArray(
            elem_type=ast.TypeNode(elem_name),
            dims=dims,
            extra_dims=extra_dims,
            location=loc,
        )


def parse_program(source: str, filename: str = "<input>") -> ast.Program:
    """Parses Bamboo source text into an AST."""
    return Parser(tokenize(source, filename), filename).parse_program()
