"""Error types and source-location tracking for the Bamboo frontend.

Every diagnostic raised by the lexer, parser, and semantic analyzer carries a
:class:`SourceLocation` so callers (and tests) can pinpoint the offending
source text.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLocation:
    """A position in a Bamboo source file (1-based line and column)."""

    line: int
    column: int
    filename: str = "<input>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


UNKNOWN_LOCATION = SourceLocation(0, 0, "<unknown>")


class BambooError(Exception):
    """Base class for all diagnostics produced by the Bamboo toolchain."""

    def __init__(self, message: str, location: SourceLocation = UNKNOWN_LOCATION):
        super().__init__(f"{location}: {message}")
        self.message = message
        self.location = location


class LexError(BambooError):
    """Raised when the lexer encounters malformed input."""


class ParseError(BambooError):
    """Raised when the parser encounters a syntax error."""


class SemanticError(BambooError):
    """Raised by type checking and name resolution."""


class LoweringError(BambooError):
    """Raised when AST-to-IR lowering encounters an unsupported construct."""


class AnalysisError(BambooError):
    """Raised by the static analyses (dependence, disjointness)."""


class RuntimeBambooError(Exception):
    """Raised when interpreted Bamboo code performs an illegal operation.

    This corresponds to a runtime fault in generated code (null dereference,
    out-of-bounds index, division by zero) rather than a compile-time
    diagnostic, so it does not carry a static source location.
    """


class ScheduleError(Exception):
    """Raised by the implementation-synthesis pipeline for invalid layouts."""
