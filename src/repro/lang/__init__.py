"""Bamboo surface language: lexer, parser, AST, and pretty-printer."""

from .errors import (
    AnalysisError,
    BambooError,
    LexError,
    LoweringError,
    ParseError,
    RuntimeBambooError,
    ScheduleError,
    SemanticError,
    SourceLocation,
)
from .lexer import Lexer, tokenize
from .parser import Parser, parse_program
from .pretty import format_program

__all__ = [
    "AnalysisError",
    "BambooError",
    "LexError",
    "Lexer",
    "LoweringError",
    "ParseError",
    "Parser",
    "RuntimeBambooError",
    "ScheduleError",
    "SemanticError",
    "SourceLocation",
    "format_program",
    "parse_program",
    "tokenize",
]
