"""Pretty-printer for Bamboo ASTs.

Produces canonical, re-parseable source text. Used by tests to verify the
parse → print → parse round-trip and by the visualization tools to show
task declarations.
"""

from __future__ import annotations

from typing import List

from . import ast

_INDENT = "    "


def _escape_string(value: str) -> str:
    out = value.replace("\\", "\\\\").replace('"', '\\"')
    out = out.replace("\n", "\\n").replace("\t", "\\t").replace("\r", "\\r")
    return f'"{out}"'


def format_expr(expr: ast.Expr) -> str:
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.FloatLit):
        text = repr(expr.value)
        return text if ("." in text or "e" in text or "E" in text) else text + ".0"
    if isinstance(expr, ast.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.StringLit):
        return _escape_string(expr.value)
    if isinstance(expr, ast.NullLit):
        return "null"
    if isinstance(expr, ast.VarRef):
        return expr.name
    if isinstance(expr, ast.ThisRef):
        return "this"
    if isinstance(expr, ast.FieldAccess):
        return f"{format_expr(expr.receiver)}.{expr.field_name}"
    if isinstance(expr, ast.ArrayIndex):
        return f"{format_expr(expr.array)}[{format_expr(expr.index)}]"
    if isinstance(expr, ast.ArrayLength):
        return f"{format_expr(expr.array)}.length"
    if isinstance(expr, ast.MethodCall):
        args = ", ".join(format_expr(arg) for arg in expr.args)
        if expr.receiver is None:
            return f"{expr.name}({args})"
        return f"{format_expr(expr.receiver)}.{expr.name}({args})"
    if isinstance(expr, ast.NewObject):
        args = ", ".join(format_expr(arg) for arg in expr.args)
        text = f"new {expr.class_name}({args})"
        actions: List[str] = [str(action) for action in expr.flag_inits]
        actions += [str(action) for action in expr.tag_inits]
        if actions:
            text += "{" + ", ".join(actions) + "}"
        return text
    if isinstance(expr, ast.NewArray):
        dims = "".join(f"[{format_expr(d)}]" for d in expr.dims)
        dims += "[]" * expr.extra_dims
        return f"new {expr.elem_type.name}{dims}"
    if isinstance(expr, ast.Binary):
        return f"({format_expr(expr.left)} {expr.op} {format_expr(expr.right)})"
    if isinstance(expr, ast.Unary):
        return f"({expr.op}{format_expr(expr.operand)})"
    if isinstance(expr, ast.Cast):
        return f"(({expr.target}) {format_expr(expr.operand)})"
    raise TypeError(f"unknown expression node: {type(expr).__name__}")


def _format_taskexit(stmt: ast.TaskExitStmt) -> str:
    groups = []
    for param, actions in stmt.actions:
        rendered = ", ".join(str(action) for action in actions)
        groups.append(f"{param}: {rendered}")
    return "taskexit(" + "; ".join(groups) + ");"


def format_stmt(stmt: ast.Stmt, indent: int = 0) -> str:
    pad = _INDENT * indent
    if isinstance(stmt, ast.Block):
        lines = [pad + "{"]
        for inner in stmt.statements:
            lines.append(format_stmt(inner, indent + 1))
        lines.append(pad + "}")
        return "\n".join(lines)
    if isinstance(stmt, ast.VarDeclStmt):
        init = f" = {format_expr(stmt.init)}" if stmt.init is not None else ""
        return f"{pad}{stmt.var_type} {stmt.name}{init};"
    if isinstance(stmt, ast.TagDeclStmt):
        return f"{pad}tag {stmt.name} = new tag({stmt.tag_type});"
    if isinstance(stmt, ast.AssignStmt):
        return f"{pad}{format_expr(stmt.target)} = {format_expr(stmt.value)};"
    if isinstance(stmt, ast.IfStmt):
        text = f"{pad}if ({format_expr(stmt.cond)})\n"
        text += format_stmt(stmt.then_branch, indent + 1)
        if stmt.else_branch is not None:
            text += f"\n{pad}else\n" + format_stmt(stmt.else_branch, indent + 1)
        return text
    if isinstance(stmt, ast.WhileStmt):
        return (
            f"{pad}while ({format_expr(stmt.cond)})\n"
            + format_stmt(stmt.body, indent + 1)
        )
    if isinstance(stmt, ast.ForStmt):
        init = format_stmt(stmt.init, 0).rstrip(";") if stmt.init is not None else ""
        cond = format_expr(stmt.cond) if stmt.cond is not None else ""
        update = format_stmt(stmt.update, 0).rstrip(";") if stmt.update is not None else ""
        return (
            f"{pad}for ({init}; {cond}; {update})\n"
            + format_stmt(stmt.body, indent + 1)
        )
    if isinstance(stmt, ast.ReturnStmt):
        if stmt.value is None:
            return f"{pad}return;"
        return f"{pad}return {format_expr(stmt.value)};"
    if isinstance(stmt, ast.BreakStmt):
        return f"{pad}break;"
    if isinstance(stmt, ast.ContinueStmt):
        return f"{pad}continue;"
    if isinstance(stmt, ast.ExprStmt):
        return f"{pad}{format_expr(stmt.expr)};"
    if isinstance(stmt, ast.TaskExitStmt):
        return pad + _format_taskexit(stmt)
    raise TypeError(f"unknown statement node: {type(stmt).__name__}")


def format_task_signature(task: ast.TaskDecl) -> str:
    """Formats only the ``task name(...)`` header (used in visualizations)."""
    params = []
    for param in task.params:
        text = f"{param.param_type} {param.name} in {param.guard}"
        if param.tag_guards:
            text += " with " + " and ".join(str(g) for g in param.tag_guards)
        params.append(text)
    return f"task {task.name}({', '.join(params)})"


def format_task(task: ast.TaskDecl) -> str:
    return format_task_signature(task) + "\n" + format_stmt(task.body, 0)


def format_method(method: ast.MethodDecl, indent: int = 1) -> str:
    pad = _INDENT * indent
    params = ", ".join(f"{p.param_type} {p.name}" for p in method.params)
    static = "static " if method.is_static else ""
    if method.is_constructor:
        header = f"{pad}{method.name}({params})"
    else:
        header = f"{pad}{static}{method.return_type} {method.name}({params})"
    return header + "\n" + format_stmt(method.body, indent)


def format_class(cls: ast.ClassDecl) -> str:
    lines = [f"class {cls.name} {{"]
    for flag in cls.flags:
        lines.append(f"{_INDENT}flag {flag};")
    for fld in cls.fields:
        lines.append(f"{_INDENT}{fld.field_type} {fld.name};")
    for method in cls.methods:
        lines.append(format_method(method))
    lines.append("}")
    return "\n".join(lines)


def format_program(program: ast.Program) -> str:
    """Formats a whole program as re-parseable Bamboo source."""
    parts = [format_class(cls) for cls in program.classes]
    parts += [format_task(task) for task in program.tasks]
    return "\n\n".join(parts) + "\n"
