"""Abstract syntax tree for the Bamboo language.

The AST mirrors the grammar in Figure 5 of the paper plus the Java-like
imperative subset used inside task and method bodies. All nodes carry a
:class:`~repro.lang.errors.SourceLocation` for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .errors import SourceLocation, UNKNOWN_LOCATION


# ---------------------------------------------------------------------------
# Types (syntactic). Semantic types live in repro.sema.types.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TypeNode:
    """A syntactic type: a base name plus array dimensions.

    ``name`` is one of ``int``, ``float``, ``boolean``, ``String``, ``void``
    or a class name; ``dims`` counts trailing ``[]`` pairs.
    """

    name: str
    dims: int = 0

    def __str__(self) -> str:
        return self.name + "[]" * self.dims


# ---------------------------------------------------------------------------
# Flag and tag expressions (task parameter guards)
# ---------------------------------------------------------------------------


class FlagExpr:
    """Base class for boolean expressions over a parameter object's flags."""


@dataclass(frozen=True)
class FlagRef(FlagExpr):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class FlagConst(FlagExpr):
    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class FlagNot(FlagExpr):
    operand: FlagExpr

    def __str__(self) -> str:
        return f"!{self.operand}"


@dataclass(frozen=True)
class FlagAnd(FlagExpr):
    left: FlagExpr
    right: FlagExpr

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True)
class FlagOr(FlagExpr):
    left: FlagExpr
    right: FlagExpr

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


@dataclass(frozen=True)
class TagGuard:
    """One ``tagtype tagname`` constraint in a ``with`` clause.

    Parameters sharing the same ``binding`` name must carry the *same* tag
    instance of type ``tag_type``.
    """

    tag_type: str
    binding: str

    def __str__(self) -> str:
        return f"{self.tag_type} {self.binding}"


# ---------------------------------------------------------------------------
# Flag / tag actions (taskexit and allocation-site initializers)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FlagAction:
    """``flagname := bool`` — sets a flag on a parameter or new object."""

    flag: str
    value: bool

    def __str__(self) -> str:
        return f"{self.flag} := {'true' if self.value else 'false'}"


@dataclass(frozen=True)
class TagAction:
    """``add t`` / ``clear t`` — binds or unbinds a tag variable's instance."""

    op: str  # "add" or "clear"
    tag_var: str

    def __str__(self) -> str:
        return f"{self.op} {self.tag_var}"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    location: SourceLocation = field(default=UNKNOWN_LOCATION, kw_only=True)


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class FloatLit(Expr):
    value: float


@dataclass
class BoolLit(Expr):
    value: bool


@dataclass
class StringLit(Expr):
    value: str


@dataclass
class NullLit(Expr):
    pass


@dataclass
class VarRef(Expr):
    name: str


@dataclass
class ThisRef(Expr):
    pass


@dataclass
class FieldAccess(Expr):
    receiver: Expr
    field_name: str


@dataclass
class ArrayIndex(Expr):
    array: Expr
    index: Expr


@dataclass
class ArrayLength(Expr):
    array: Expr


@dataclass
class MethodCall(Expr):
    """``receiver.name(args)``; ``receiver is None`` means a call on ``this``
    or a builtin/static call (resolved during semantic analysis)."""

    receiver: Optional[Expr]
    name: str
    args: List[Expr]
    #: Optional explicit class qualifier for static-style builtin calls,
    #: e.g. ``Math.sqrt`` parses with qualifier "Math".
    qualifier: Optional[str] = None


@dataclass
class NewObject(Expr):
    """``new C(args){flag := true, add t}`` — allocation with initial
    abstract state and tag bindings."""

    class_name: str
    args: List[Expr]
    flag_inits: List[FlagAction] = field(default_factory=list)
    tag_inits: List[TagAction] = field(default_factory=list)


@dataclass
class NewArray(Expr):
    elem_type: TypeNode
    dims: List[Expr]  # one expression per allocated dimension
    extra_dims: int = 0  # trailing [] with no size


@dataclass
class Binary(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass
class Unary(Expr):
    op: str
    operand: Expr


@dataclass
class Cast(Expr):
    target: TypeNode
    operand: Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    location: SourceLocation = field(default=UNKNOWN_LOCATION, kw_only=True)


@dataclass
class Block(Stmt):
    statements: List[Stmt]


@dataclass
class VarDeclStmt(Stmt):
    var_type: TypeNode
    name: str
    init: Optional[Expr]


@dataclass
class TagDeclStmt(Stmt):
    """``tag t = new tag(tagtype);``"""

    name: str
    tag_type: str


@dataclass
class AssignStmt(Stmt):
    """``target = value`` where target is a VarRef, FieldAccess or
    ArrayIndex."""

    target: Expr
    value: Expr


@dataclass
class IfStmt(Stmt):
    cond: Expr
    then_branch: Stmt
    else_branch: Optional[Stmt]


@dataclass
class WhileStmt(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class ForStmt(Stmt):
    init: Optional[Stmt]
    cond: Optional[Expr]
    update: Optional[Stmt]
    body: Stmt


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr]


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class TaskExitStmt(Stmt):
    """``taskexit(p: f := true, add t; q: g := false);``

    ``actions`` maps parameter name to the ordered list of flag/tag actions
    applied to that parameter when the task exits through this statement.
    """

    actions: List[Tuple[str, List[object]]]  # (param name, [FlagAction|TagAction])


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Param:
    param_type: TypeNode
    name: str
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass
class TaskParam:
    """A guarded task parameter: ``Type name in flagexp [with tagexp]``."""

    param_type: TypeNode
    name: str
    guard: FlagExpr
    tag_guards: List[TagGuard] = field(default_factory=list)
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass
class FieldDecl:
    field_type: TypeNode
    name: str
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass
class MethodDecl:
    return_type: TypeNode
    name: str
    params: List[Param]
    body: Block
    is_static: bool = False
    is_constructor: bool = False
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass
class ClassDecl:
    name: str
    flags: List[str]
    fields: List[FieldDecl]
    methods: List[MethodDecl]
    location: SourceLocation = UNKNOWN_LOCATION

    def find_method(self, name: str) -> Optional[MethodDecl]:
        for method in self.methods:
            if method.name == name and not method.is_constructor:
                return method
        return None

    def find_constructor(self) -> Optional[MethodDecl]:
        for method in self.methods:
            if method.is_constructor:
                return method
        return None


@dataclass
class TaskDecl:
    name: str
    params: List[TaskParam]
    body: Block
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass
class Program:
    """A complete Bamboo compilation unit."""

    classes: List[ClassDecl]
    tasks: List[TaskDecl]

    def find_class(self, name: str) -> Optional[ClassDecl]:
        for cls in self.classes:
            if cls.name == name:
                return cls
        return None

    def find_task(self, name: str) -> Optional[TaskDecl]:
        for task in self.tasks:
            if task.name == name:
                return task
        return None


# ---------------------------------------------------------------------------
# Generic traversal helper
# ---------------------------------------------------------------------------


def child_exprs(expr: Expr) -> List[Expr]:
    """Returns the direct sub-expressions of ``expr`` (for generic walks)."""
    if isinstance(expr, FieldAccess):
        return [expr.receiver]
    if isinstance(expr, ArrayIndex):
        return [expr.array, expr.index]
    if isinstance(expr, ArrayLength):
        return [expr.array]
    if isinstance(expr, MethodCall):
        base = [expr.receiver] if expr.receiver is not None else []
        return base + list(expr.args)
    if isinstance(expr, NewObject):
        return list(expr.args)
    if isinstance(expr, NewArray):
        return list(expr.dims)
    if isinstance(expr, Binary):
        return [expr.left, expr.right]
    if isinstance(expr, Unary):
        return [expr.operand]
    if isinstance(expr, Cast):
        return [expr.operand]
    return []


def walk_expr(expr: Expr):
    """Yields ``expr`` and all sub-expressions, pre-order."""
    yield expr
    for child in child_exprs(expr):
        yield from walk_expr(child)


def child_stmts(stmt: Stmt) -> List[Stmt]:
    if isinstance(stmt, Block):
        return list(stmt.statements)
    if isinstance(stmt, IfStmt):
        out = [stmt.then_branch]
        if stmt.else_branch is not None:
            out.append(stmt.else_branch)
        return out
    if isinstance(stmt, WhileStmt):
        return [stmt.body]
    if isinstance(stmt, ForStmt):
        out = []
        if stmt.init is not None:
            out.append(stmt.init)
        if stmt.update is not None:
            out.append(stmt.update)
        out.append(stmt.body)
        return out
    return []


def walk_stmts(stmt: Stmt):
    """Yields ``stmt`` and all nested statements, pre-order."""
    yield stmt
    for child in child_stmts(stmt):
        yield from walk_stmts(child)


def stmt_exprs(stmt: Stmt) -> List[Expr]:
    """Returns the expressions directly contained in ``stmt``."""
    if isinstance(stmt, VarDeclStmt):
        return [stmt.init] if stmt.init is not None else []
    if isinstance(stmt, AssignStmt):
        return [stmt.target, stmt.value]
    if isinstance(stmt, IfStmt):
        return [stmt.cond]
    if isinstance(stmt, WhileStmt):
        return [stmt.cond]
    if isinstance(stmt, ForStmt):
        return [stmt.cond] if stmt.cond is not None else []
    if isinstance(stmt, ReturnStmt):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ExprStmt):
        return [stmt.expr]
    return []
