#!/usr/bin/env python3
"""Compiler explorer: dump every intermediate artifact for a benchmark.

Shows what the Bamboo compiler computes for a program, stage by stage:
the IR of a task, the per-class ASTGs, the profile-annotated CSTG (Figure 3
style), the core-group graph with replica suggestions, the synthesized
layout, and the critical path of its simulated schedule (Figure 6 style).

Run:  python examples/compiler_explorer.py [benchmark]
      (default: Fractal; try Keyword, KMeans, Tracking, ...)
"""

import sys

from repro.bench import benchmark_names, get_spec, load_benchmark
from repro.core import (
    SynthesisOptions,
    annotated_cstg,
    profile_program,
    synthesize_layout,
)
from repro.schedule.coregroup import build_group_graph
from repro.schedule.critpath import compute_critical_path
from repro.schedule.rules import suggest_replicas
from repro.schedule.simulator import simulate
from repro.viz import render_critical_path

NUM_CORES = 8


def header(title: str) -> None:
    print("\n" + "=" * 70)
    print(title)
    print("=" * 70)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "Fractal"
    if name not in benchmark_names():
        raise SystemExit(f"unknown benchmark {name!r}; have {benchmark_names()}")
    spec = get_spec(name)
    compiled = load_benchmark(name)
    args = list(spec.args)

    header(f"{name}: task declarations")
    from repro.lang.pretty import format_task_signature

    for task in compiled.program.tasks:
        print(" ", format_task_signature(task))

    header("IR of the first worker task")
    worker = next(
        t for t in compiled.task_names() if t != "startup"
    )
    print(compiled.ir_program.tasks[worker].format())

    header("abstract state transition graphs (dependence analysis, §4.1)")
    for class_name, astg in compiled.astgs.items():
        if astg.states:
            print(astg.format())

    header("disjointness analysis (§4.2)")
    for task in compiled.task_names():
        plan = compiled.lock_plan.plan_for(task)
        kind = "fine-grained locks" if plan.is_fine_grained else (
            f"shared-lock groups {plan.shared_groups}"
        )
        print(f"  {task}: {kind}")

    header(f"profiling with args {args}")
    profile = profile_program(compiled, args)
    for task in profile.task_names():
        print(
            f"  {task}: x{profile.invocations(task)}, "
            f"avg {profile.avg_task_cycles(task):,.0f} cycles, "
            f"exits {profile.exit_ids(task)}"
        )

    header("profile-annotated CSTG (Figure 3 style)")
    cstg = annotated_cstg(compiled, profile)
    print(cstg.format())

    header("core groups and transformation rules (§4.3)")
    graph = build_group_graph(compiled.info, cstg, profile)
    print(graph.format())
    for suggestion in suggest_replicas(
        compiled.info, graph, profile, NUM_CORES
    ).values():
        tasks = graph.group(suggestion.group_id).label()
        print(
            f"  {tasks}: {suggestion.replicas} replicas ({suggestion.rule})"
        )

    header(f"synthesized {NUM_CORES}-core layout (§4.5)")
    report = synthesize_layout(
        compiled, profile, NUM_CORES, options=SynthesisOptions(seed=0)
    )
    print(report.layout.describe())
    print(f"  estimated: {report.estimated_cycles:,} cycles "
          f"({report.evaluations} layouts evaluated in "
          f"{report.wall_seconds:.2f}s)")

    header("critical path of the simulated schedule (Figure 6 style, §4.5.1)")
    result = simulate(compiled, report.layout, profile, hints=spec.hints)
    path = compute_critical_path(result)
    text = render_critical_path(path)
    lines = text.splitlines()
    for line in lines[:25]:
        print(line)
    if len(lines) > 25:
        print(f"  ... {len(lines) - 25} more steps")


if __name__ == "__main__":
    main()
