#!/usr/bin/env python3
"""MonteCarlo pipelining — reproducing the paper's §5.4 observation.

The paper was "surprised to find" that Bamboo's synthesis generated a
heterogeneous implementation of the MonteCarlo benchmark that used
pipelining to overlap the simulation and aggregation phases. This example
synthesizes a layout for the MonteCarlo benchmark, then inspects the
scheduling-simulator trace to show the overlap: aggregate invocations run
on their own core *while* simulate invocations are still executing
elsewhere.

Run:  python examples/montecarlo_pipeline.py
"""

from repro.bench import get_spec, load_benchmark
from repro.core import profile_program, run_layout, synthesize_layout
from repro.schedule.simulator import simulate

NUM_CORES = 16


def overlap_fraction(trace) -> float:
    """Fraction of aggregate busy-time overlapping some simulate event."""
    sim_windows = [(e.start, e.end) for e in trace if e.task == "simulate"]
    agg_events = [e for e in trace if e.task == "aggregate"]
    if not agg_events:
        return 0.0
    overlapped = 0
    total = 0
    for event in agg_events:
        total += event.duration
        for start, end in sim_windows:
            low = max(start, event.start)
            high = min(end, event.end)
            if high > low:
                overlapped += high - low
                break
    return overlapped / total if total else 0.0


def main() -> None:
    spec = get_spec("MonteCarlo")
    compiled = load_benchmark("MonteCarlo")
    args = list(spec.args)

    print(f"profiling MonteCarlo {args} ...")
    profile = profile_program(compiled, args)

    print(f"synthesizing a {NUM_CORES}-core implementation ...")
    report = synthesize_layout(compiled, profile, NUM_CORES, seed=0)
    layout = report.layout
    print(layout.describe())

    sim_cores = set(layout.cores_of("simulate"))
    agg_cores = set(layout.cores_of("aggregate"))
    print(f"\nsimulate instances: {len(sim_cores)} cores")
    print(f"aggregate instance: core {sorted(agg_cores)}")
    if agg_cores - sim_cores:
        print("-> heterogeneous: aggregation has a dedicated core, so it can")
        print("   pipeline with simulation (the paper's §5.4 observation)")

    result = simulate(compiled, layout, profile)
    fraction = overlap_fraction(result.trace)
    print(f"\nsimulated trace: {len(result.trace)} invocations, "
          f"{result.total_cycles:,} cycles")
    print(f"aggregate work overlapped with simulation: {fraction:.0%}")

    machine = run_layout(compiled, layout, args)
    print(f"\nreal machine run: {machine.total_cycles:,} cycles "
          f"-> {machine.stdout!r}")
    print(f"messages between cores: {machine.messages}")


if __name__ == "__main__":
    main()
