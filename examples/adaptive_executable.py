#!/usr/bin/env python3
"""Field re-optimization — the paper's §7 extension, running.

An AdaptiveExecutable keeps its layout separate from its code. It ships
conservatively (single core), profiles itself during production runs, and
periodically reruns the synthesis pipeline against the workload it actually
observes — including after being migrated to a different processor.

Run:  python examples/adaptive_executable.py
"""

from repro.bench import load_benchmark
from repro.core.adaptive import AdaptiveExecutable
from repro.schedule.anneal import AnnealConfig


def main() -> None:
    compiled = load_benchmark("Fractal")
    exe = AdaptiveExecutable(
        compiled,
        num_cores=8,
        profile_every=3,
        config=AnnealConfig(max_evaluations=200),
    )

    print("phase 1: running in the field on an 8-core machine")
    for run in range(1, 5):
        result = exe.run(["48"])
        print(
            f"  run {run}: {result.total_cycles:>9,} cycles on "
            f"{len(exe.layout.cores_used())} cores -> {result.stdout!r}"
        )

    print("\nphase 2: the machine is upgraded to 16 cores")
    exe.retarget(16)
    for run in range(5, 9):
        result = exe.run(["48"])
        print(
            f"  run {run}: {result.total_cycles:>9,} cycles on "
            f"{len(exe.layout.cores_used())} cores"
        )

    print("\nphase 3: the field workload doubles")
    for run in range(9, 13):
        result = exe.run(["96"])
        print(
            f"  run {run}: {result.total_cycles:>9,} cycles on "
            f"{len(exe.layout.cores_used())} cores"
        )

    print("\nadaptation log:")
    for record in exe.history:
        verdict = "ADOPTED" if record.adopted else "kept old"
        print(
            f"  after run {record.run_index} (workload {record.workload}): "
            f"estimate {record.old_estimate:,} -> {record.new_estimate:,} "
            f"cycles ({record.predicted_gain:+.0%}) => {verdict}"
        )


if __name__ == "__main__":
    main()
