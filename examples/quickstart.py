#!/usr/bin/env python3
"""Quickstart: compile, profile, synthesize, and run a Bamboo program.

This walks the full pipeline of the paper on its §2 keyword-counting
example: write a data-centric program as tasks with abstract-state guards,
let the compiler analyze it, bootstrap a single-core profile, synthesize an
optimized many-core layout with directed simulated annealing, and execute
it on the simulated many-core machine.

Run:  python examples/quickstart.py
"""

from repro.core import (
    SynthesisOptions,
    compile_program,
    profile_program,
    run_layout,
    run_sequential,
    single_core_layout,
    synthesize_layout,
)

SOURCE = """
// Objects carry abstract states ("flags"); tasks declare guards over them
// and the runtime invokes a task when matching objects exist (paper §2).
class Text {
    flag process;
    flag submit;
    String data;
    int result;

    Text(String s) { this.data = s; this.result = 0; }

    void work() {
        String[] words = this.data.split();
        int n = 0;
        for (int i = 0; i < words.length; i++) {
            if (words[i].equals("bamboo")) n = n + 1;
        }
        this.result = n;
    }
}

class Results {
    flag finished;
    int total;
    int expected;
    int merged;

    Results(int e) { this.expected = e; this.total = 0; this.merged = 0; }

    boolean mergeResult(Text t) {
        this.total = this.total + t.result;
        this.merged = this.merged + 1;
        return this.merged == this.expected;
    }
}

class SeqMain {
    SeqMain() { }
    void run(String[] args) {
        int sections = Integer.parseInt(args[0]);
        int total = 0;
        for (int s = 0; s < sections; s++) {
            String[] words = "bamboo grows fast bamboo".split();
            for (int i = 0; i < words.length; i++) {
                if (words[i].equals("bamboo")) total = total + 1;
            }
        }
        System.printString("total=" + total);
    }
}

task startup(StartupObject s in initialstate) {
    int sections = Integer.parseInt(s.args[0]);
    for (int i = 0; i < sections; i++) {
        Text tp = new Text("bamboo grows fast bamboo"){process := true};
    }
    Results rp = new Results(sections){finished := false};
    taskexit(s: initialstate := false);
}

task processText(Text tp in process) {
    tp.work();
    taskexit(tp: process := false, submit := true);
}

task mergeIntermediateResult(Results rp in !finished, Text tp in submit) {
    boolean allprocessed = rp.mergeResult(tp);
    if (allprocessed) {
        System.printString("total=" + rp.total);
        taskexit(rp: finished := true; tp: submit := false);
    }
    taskexit(tp: submit := false);
}
"""


def main() -> None:
    args = ["24"]

    print("1. compiling (parse, typecheck, lower, dependence + disjointness)")
    compiled = compile_program(SOURCE, "quickstart.bam")
    print(f"   tasks: {compiled.task_names()}")
    print(f"   fine-grained-lock tasks: {compiled.lock_plan.fine_grained_tasks()}")
    print()
    print("   Text's abstract state machine (ASTG):")
    for line in compiled.astgs["Text"].format().splitlines():
        print("   " + line)

    print()
    print("2. baselines")
    seq = run_sequential(compiled, args)
    print(f"   sequential (C-substitute): {seq.cycles:>9,} cycles -> {seq.stdout!r}")
    one = run_layout(compiled, single_core_layout(compiled), args)
    print(f"   1-core Bamboo:             {one.total_cycles:>9,} cycles -> {one.stdout!r}")
    overhead = (one.total_cycles - seq.cycles) / seq.cycles
    print(f"   Bamboo runtime overhead:   {overhead:.1%}")

    print()
    print("3. profiling (bootstraps the Markov model, paper §4.3.1)")
    profile = profile_program(compiled, args)
    for task in profile.task_names():
        print(
            f"   {task}: {profile.invocations(task)} invocations, "
            f"avg {profile.avg_task_cycles(task):,.0f} cycles"
        )

    print()
    print("4. synthesizing an 8-core implementation (rules + DSA, §4.3-4.5)")
    report = synthesize_layout(
        compiled, profile, num_cores=8, options=SynthesisOptions(seed=0)
    )
    print(f"   evaluated {report.requested_evaluations} candidate layouts "
          f"({report.evaluations} simulated, {report.cache_hits} from the "
          f"simulation cache) in {report.wall_seconds:.2f}s")
    for line in report.layout.describe().splitlines():
        print("   " + line)

    print()
    print("5. running the synthesized layout on the machine simulator")
    many = run_layout(compiled, report.layout, args)
    print(f"   8-core Bamboo: {many.total_cycles:>9,} cycles -> {many.stdout!r}")
    print(f"   speedup vs 1-core Bamboo: "
          f"{one.total_cycles / many.total_cycles:.2f}x")
    print(f"   inter-core messages: {many.messages}")
    assert many.stdout == seq.stdout


if __name__ == "__main__":
    main()
