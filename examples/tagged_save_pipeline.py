#!/usr/bin/env python3
"""Tags: pairing related objects across a task pipeline (paper §3).

The paper motivates tags with a graphics editor: ``startsave`` creates an
uncompressed Image for a Drawing and tags both with a fresh ``saveop`` tag
instance; after ``compress`` runs, ``finishsave`` must receive the
compressed Image belonging to *that* Drawing — even when many saves are in
flight. Because every parameter of ``finishsave`` shares the tag binding,
the compiler may replicate it: the runtime hashes tag instances so paired
objects meet at the same core.

Run:  python examples/tagged_save_pipeline.py
"""

from repro.core import compile_program, run_layout, single_core_layout
from repro.schedule.layout import Layout, common_tag_binding

SOURCE = """
class Drawing {
    flag dirty;
    flag saving;
    flag saved;
    int id;
    int imageSize;
    Drawing(int id) { this.id = id; this.imageSize = 0; }
}

class Image {
    flag uncompressed;
    flag compressed;
    int owner;
    int size;
    Image(int owner, int size) { this.owner = owner; this.size = size; }
}

task startup(StartupObject s in initialstate) {
    int drawings = Integer.parseInt(s.args[0]);
    for (int i = 0; i < drawings; i++) {
        Drawing d = new Drawing(i){dirty := true};
    }
    taskexit(s: initialstate := false);
}

task startsave(Drawing d in dirty) {
    tag t = new tag(saveop);
    Image img = new Image(d.id, 1000 + d.id * 64){uncompressed := true, add t};
    taskexit(d: dirty := false, saving := true, add t);
}

task compress(Image img in uncompressed) {
    int size = img.size;
    int passes = 0;
    while (size > 100) {
        size = size * 3 / 4;
        passes = passes + 1;
    }
    img.size = size;
    taskexit(img: uncompressed := false, compressed := true);
}

task finishsave(Drawing d in saving with saveop t,
                Image img in compressed with saveop t) {
    d.imageSize = img.size;
    if (d.id != img.owner) {
        // Tag matching guarantees this never happens.
        System.printString("MISMATCH ");
    }
    taskexit(d: saving := false, saved := true; img: compressed := false);
}
"""


def main() -> None:
    compiled = compile_program(SOURCE, "tagged_save.bam")
    finishsave = compiled.info.task_info("finishsave").decl
    print(f"common tag binding of finishsave: {common_tag_binding(finishsave)!r}")
    print("-> replicable despite having two parameters (tag-hash routing)\n")

    drawings = "12"

    single = run_layout(compiled, single_core_layout(compiled), [drawings])
    print(f"1-core run:  {single.total_cycles:,} cycles, "
          f"finishsave x{single.invocations['finishsave']}")

    # Replicate the whole save pipeline, including the two-parameter
    # finishsave task — legal because of the shared saveop tag.
    layout = Layout.make(6, {
        "startup": [0],
        "startsave": [0, 1, 2],
        "compress": [3, 4, 5],
        "finishsave": [1, 3, 5],
    })
    parallel = run_layout(compiled, layout, [drawings])
    print(f"6-core run:  {parallel.total_cycles:,} cycles, "
          f"finishsave x{parallel.invocations['finishsave']}")
    print(f"speedup: {single.total_cycles / parallel.total_cycles:.2f}x, "
          f"messages: {parallel.messages}")

    assert "MISMATCH" not in parallel.stdout, "tag pairing failed!"
    print("\nno MISMATCH printed: every Drawing met its own Image, even with")
    print("three replicated instances of the two-parameter finishsave task.")


if __name__ == "__main__":
    main()
