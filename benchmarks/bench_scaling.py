"""Extension: speedup scaling curves (not a paper figure).

The paper reports only the 62-core endpoint; this bench sweeps the core
count for two contrasting benchmarks — embarrassingly parallel Fractal and
merge-bound KMeans — and checks the expected scaling shapes: Fractal keeps
climbing to the full machine, while KMeans' serialized aggregation flattens
its curve early (the §4.6/§5 discussion of merge bottlenecks)."""

from conftest import emit
from repro.core import run_layout
from repro.runtime.machine import MachineConfig
from repro.viz import render_table
from telemetry import write_telemetry

CORE_COUNTS = [2, 4, 8, 16, 32, 62]
BENCHES = ["Fractal", "KMeans"]


def run_all(ctx):
    rows = {}
    for name in BENCHES:
        compiled = ctx.compiled(name)
        args = ctx.args(name)
        one = ctx.one_core_run(name).total_cycles
        series = []
        for cores in CORE_COUNTS:
            layout = ctx.synthesis_report(name, num_cores=cores).layout
            result = run_layout(
                compiled, layout, args, config=MachineConfig(observe=True)
            )
            series.append(
                {
                    "cores": cores,
                    "cycles": result.total_cycles,
                    "speedup": one / result.total_cycles,
                    "busy_fraction": result.busy_fraction(),
                    "accounting": result.metrics["accounting"]["totals"],
                }
            )
        rows[name] = {"one": one, "series": series}
    return rows


def test_scaling_curves(benchmark, ctx):
    rows = benchmark.pedantic(run_all, args=(ctx,), iterations=1, rounds=1)

    table_rows = []
    for cores_index, cores in enumerate(CORE_COUNTS):
        row = [cores]
        for name in BENCHES:
            point = rows[name]["series"][cores_index]
            row.append(f"{point['speedup']:.1f}x")
        table_rows.append(row)
    table = render_table(["Cores"] + BENCHES, table_rows)
    emit(
        "Extension: speedup vs core count",
        table,
        artifact="scaling.txt",
    )
    write_telemetry("scaling", {"curves": rows})

    for name in BENCHES:
        series = rows[name]["series"]
        # Monotone non-decreasing speedup with more cores (small tolerance
        # for layout-search noise).
        for before, after in zip(series, series[1:]):
            assert after["speedup"] >= before["speedup"] * 0.9, name

    fractal = {p["cores"]: p["speedup"] for p in rows["Fractal"]["series"]}
    kmeans = {p["cores"]: p["speedup"] for p in rows["KMeans"]["series"]}
    # Fractal still gains substantially from 32 -> 62 cores...
    assert fractal[62] > fractal[32] * 1.25
    # ...while merge-bound KMeans has visibly flattened by then.
    assert kmeans[62] < kmeans[32] * 1.25
    # And at the full machine, Fractal scales far better than KMeans.
    assert fractal[62] > kmeans[62] * 1.4
