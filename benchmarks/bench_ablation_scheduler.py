"""Ablation: distributed vs centralized scheduling (paper §4.6).

The paper argues a centralized scheduler becomes the bottleneck as core
counts grow, which is why Bamboo's generated implementations distribute
scheduling across all cores. We run identical synthesized layouts with the
runtime's centralized-dispatch mode (every dispatch serializes through a
scheduler on core 0, paying the request/response round trip) and measure
the slowdown at increasing core counts. A fine-grained Series workload
(many small coefficient tasks) exposes the bottleneck."""

from conftest import bench_config, emit
from repro.bench import load_benchmark
from repro.core import profile_program, run_layout, synthesize_layout
from repro.runtime.machine import MachineConfig
from repro.viz import render_table

NAME = "Series"
#: Many tiny tasks: 248 coefficients of only 8 integration points each.
ARGS = ["248", "8"]
CORE_COUNTS = [4, 16, 32]


def run_all(ctx):
    compiled = load_benchmark(NAME)
    profile = profile_program(compiled, ARGS)
    rows = []
    for cores in CORE_COUNTS:
        layout = synthesize_layout(
            compiled, profile, cores, seed=0, config=bench_config()
        ).layout
        distributed = run_layout(compiled, layout, ARGS)
        centralized = run_layout(
            compiled,
            layout,
            ARGS,
            config=MachineConfig(centralized_scheduler=True),
        )
        assert distributed.stdout == centralized.stdout
        rows.append(
            {
                "cores": cores,
                "distributed": distributed.total_cycles,
                "centralized": centralized.total_cycles,
                "slowdown": centralized.total_cycles / distributed.total_cycles,
            }
        )
    return rows


def test_ablation_centralized_scheduler(benchmark, ctx):
    rows = benchmark.pedantic(run_all, args=(ctx,), iterations=1, rounds=1)

    table = render_table(
        ["Cores", "Distributed (cyc)", "Centralized (cyc)", "Slowdown"],
        [
            [r["cores"], r["distributed"], r["centralized"], f"{r['slowdown']:.2f}x"]
            for r in rows
        ],
    )
    emit(
        f"Ablation: centralized vs distributed scheduler "
        f"({NAME}, fine-grained workload {ARGS})",
        table,
        artifact="ablation_scheduler.txt",
    )

    # The centralized scheduler is never faster, and its penalty grows with
    # the core count — the paper's scaling argument.
    for r in rows:
        assert r["slowdown"] >= 0.99
    assert rows[-1]["slowdown"] > rows[0]["slowdown"]
    assert rows[-1]["slowdown"] > 1.1
