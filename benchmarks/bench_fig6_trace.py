"""Figure 6 — the simulated execution trace of the keyword counting example
on a quad-core layout (Figure 4's layout), with the critical path marked."""

from conftest import emit
from repro.bench import load_benchmark
from repro.core import profile_program
from repro.schedule.critpath import compute_critical_path
from repro.schedule.layout import Layout
from repro.schedule.simulator import simulate
from repro.viz import render_critical_path, render_trace, trace_to_dot


def figure4_layout(compiled):
    """The paper's Figure 4 quad-core layout: every task on core 0, and
    processText replicated across all four cores."""
    mapping = {task: [0] for task in compiled.info.tasks}
    mapping["processText"] = [0, 1, 2, 3]
    return Layout.make(4, mapping)


def build_fig6():
    compiled = load_benchmark("Keyword")
    profile = profile_program(compiled, ["4"])
    layout = figure4_layout(compiled)
    result = simulate(compiled, layout, profile)
    path = compute_critical_path(result)
    return result, path


def test_fig6_trace(benchmark):
    result, path = benchmark.pedantic(build_fig6, iterations=1, rounds=1)

    emit(
        "Figure 6: execution trace + critical path (keyword, 4 cores)",
        render_trace(result)
        + "\n\n"
        + render_critical_path(path)
        + "\n\nDOT:\n"
        + trace_to_dot(result, path, "fig6-trace"),
        artifact="fig6_trace.txt",
    )

    # -- shape assertions -------------------------------------------------------
    # The trace spreads processText over several cores.
    process_cores = {
        e.core for e in result.trace if e.task == "processText"
    }
    assert len(process_cores) >= 3

    # The critical path starts at startup and ends at the final merge, as in
    # the paper's figure.
    assert path.steps[0].event.task == "startup"
    assert path.steps[-1].event.task == "mergeIntermediateResult"
    assert path.total == result.total_cycles

    # Every merge runs on core 0 (single instantiation of a multi-parameter
    # task), giving the serialization the figure shows.
    merge_cores = {
        e.core for e in result.trace if e.task == "mergeIntermediateResult"
    }
    assert merge_cores == {0}
