"""The synthesis service: cold vs warm latency of the persistent SimCache.

One fixed synthesize request (KMeans at 16 cores, the Figure 10 search
workload) is served three ways against the same daemon cache file:

1. **Cold** — fresh daemon, empty cache file: the full DSA search runs.
2. **Warm, same daemon** — the identical request again: answered from
   the in-memory shared cache.
3. **Warm, restarted daemon** — the daemon is stopped (flushing the
   cache to disk) and a new one started on the same file: the request
   is answered purely from the *persisted* cache — zero simulations.

The serving-transparency contract is asserted throughout: all three
responses (and an offline run of the same request) are bit-identical;
only latency and cache accounting may differ. Results are recorded as
one JSON telemetry document (``benchmarks/out/serve.json``).
"""

import json
import os
import time

from conftest import emit
from repro.bench import get_spec
from repro.serve import ServeConfig, ServerThread
from repro.serve.service import execute_synthesize
from repro.viz import render_table
from telemetry import write_telemetry

BENCH = "KMeans"
NUM_CORES = 16


def _request_params():
    spec = get_spec(BENCH)
    with open(spec.path, "r") as handle:
        source = handle.read()
    params = {
        "source": source,
        "args": list(spec.args),
        "optimize": True,
        "cores": NUM_CORES,
        "seed": 0,
        "max_iterations": 10,
        "max_evaluations": 600,
    }
    if spec.hints:
        params["hints"] = dict(spec.hints)
    return params


def _timed_synthesize(client, params):
    started = time.perf_counter()
    response = client.call("synthesize", **params)
    wall = time.perf_counter() - started
    return response["result"], response["telemetry"], wall


def run_all(cache_path):
    params = _request_params()
    measurements = {}

    with ServerThread(ServeConfig(cache_path=cache_path)) as handle:
        with handle.client(timeout=600.0) as client:
            measurements["cold"] = _timed_synthesize(client, params)
            measurements["warm_memory"] = _timed_synthesize(client, params)
            hit_rate = client.metrics()["cache_hit_rate"]

    with ServerThread(ServeConfig(cache_path=cache_path)) as handle:
        with handle.client(timeout=600.0) as client:
            assert "warm cache" in client.ping()["cache"]
            measurements["warm_restart"] = _timed_synthesize(client, params)

    offline_result, _telemetry = execute_synthesize(params)
    return measurements, hit_rate, offline_result


def test_serve_cold_vs_warm(benchmark, tmp_path_factory):
    cache_path = str(tmp_path_factory.mktemp("serve") / "simcache.bin")
    measurements, hit_rate, offline_result = benchmark.pedantic(
        run_all, args=(cache_path,), iterations=1, rounds=1
    )

    cold_result, cold_telemetry, cold_wall = measurements["cold"]
    _memory_result, memory_telemetry, memory_wall = measurements["warm_memory"]
    warm_result, warm_telemetry, warm_wall = measurements["warm_restart"]

    # Serving transparency: every path returns the same bytes.
    canonical = lambda r: json.dumps(r, sort_keys=True)
    assert canonical(cold_result) == canonical(offline_result)
    assert canonical(warm_result) == canonical(cold_result)
    assert canonical(_memory_result) == canonical(cold_result)

    # The cold run searched; both warm runs answered without simulating.
    assert cold_telemetry["evaluations"] > 0
    assert memory_telemetry["evaluations"] == 0
    assert warm_telemetry["evaluations"] == 0
    assert warm_telemetry["cache_hits"] > 0
    # The headline claim: restart latency is paid from disk, not search.
    assert warm_wall < cold_wall

    table = render_table(
        ["Path", "Wall", "Simulations", "Cache hits"],
        [
            ["cold (empty cache)", f"{cold_wall:.2f}s",
             cold_telemetry["evaluations"], cold_telemetry["cache_hits"]],
            ["warm (same daemon)", f"{memory_wall:.2f}s",
             memory_telemetry["evaluations"], memory_telemetry["cache_hits"]],
            ["warm (after restart)", f"{warm_wall:.2f}s",
             warm_telemetry["evaluations"], warm_telemetry["cache_hits"]],
        ],
    )
    emit(
        f"Synthesis service: persistent SimCache ({BENCH}, {NUM_CORES} cores)",
        table
        + f"\n\ndaemon cache hit rate: {hit_rate:.1%}"
        + f"\nrestart speedup:       {cold_wall / warm_wall:.1f}x"
        + "\nall responses bit-identical to offline: True",
        artifact="serve.txt",
    )
    write_telemetry(
        "serve",
        {
            "benchmark": BENCH,
            "num_cores": NUM_CORES,
            "estimated_cycles": cold_result["estimated_cycles"],
            "cold": {
                "wall_seconds": cold_wall,
                "evaluations": cold_telemetry["evaluations"],
                "cache_hits": cold_telemetry["cache_hits"],
            },
            "warm_memory": {
                "wall_seconds": memory_wall,
                "evaluations": memory_telemetry["evaluations"],
                "cache_hits": memory_telemetry["cache_hits"],
            },
            "warm_restart": {
                "wall_seconds": warm_wall,
                "evaluations": warm_telemetry["evaluations"],
                "cache_hits": warm_telemetry["cache_hits"],
            },
            "cache_hit_rate": hit_rate,
            "restart_speedup": cold_wall / warm_wall,
            "bit_identical_to_offline": True,
            "cache_file_bytes": os.path.getsize(cache_path),
        },
    )
