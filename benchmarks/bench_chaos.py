"""Extension: chaos sweeps under detection-driven resilience.

Measured claims of the `repro.resilience` subsystem:

1. **Invariants under chaos.** Seeded sweeps of random fault plans (core
   crashes, transient stalls, link degradation) across three benchmarks
   all terminate with exactly-once commits, balanced quarantine
   accounting, and fault-free output whenever nothing was quarantined.
2. **Detection costs what the policy says.** Mean halt-to-detection
   latency tracks the suspicion window (heartbeat interval x suspicion
   beats), and false suspicions from long stalls are repaired by rejoin
   rather than by losing the core.
"""

from conftest import emit
from repro.core import run_layout
from repro.resilience import ResilienceConfig, run_chaos
from repro.viz import render_table
from telemetry import write_telemetry

CHAOS_BENCHMARKS = ["Keyword", "MonteCarlo", "Series"]
RUNS_PER_BENCHMARK = 8


def run_sweeps(ctx):
    rows = []
    for name in CHAOS_BENCHMARKS:
        compiled = ctx.compiled(name)
        args = ctx.args(name)
        layout = ctx.synthesis_report(name, num_cores=8).layout
        resilience = ResilienceConfig(heartbeat_interval=400, suspicion_beats=3)
        report = run_chaos(
            compiled,
            layout,
            args,
            runs=RUNS_PER_BENCHMARK,
            base_seed=0,
            resilience=resilience,
        )
        faults = sum(len(run.plan.events) for run in report.runs)
        stats = [
            run.result.recovery
            for run in report.runs
            if run.result is not None and run.result.recovery is not None
        ]
        detections = sum(s.detections for s in stats)
        latency = sum(s.detection_latency_cycles for s in stats)
        rows.append(
            {
                "name": name,
                "plans": len(report.runs),
                "faults": faults,
                "detections": detections,
                "mean_latency": latency / detections if detections else 0.0,
                "window": resilience.suspicion_window,
                "false_susp": sum(s.false_suspicions for s in stats),
                "rejoins": sum(s.rejoins for s in stats),
                "quarantined": sum(s.quarantined_groups for s in stats),
                "ok": report.ok,
                "violations": report.violations(),
            }
        )
    return rows


def test_chaos(benchmark, ctx):
    rows = benchmark.pedantic(
        run_sweeps, args=(ctx,), iterations=1, rounds=1
    )
    table = render_table(
        ["benchmark", "plans", "faults", "detected", "mean latency",
         "window", "false susp", "rejoins", "quarantined", "invariants"],
        [
            [
                r["name"],
                r["plans"],
                r["faults"],
                r["detections"],
                f"{r['mean_latency']:,.0f}",
                f"{r['window']:,}",
                r["false_susp"],
                r["rejoins"],
                r["quarantined"],
                "held" if r["ok"] else "VIOLATED",
            ]
            for r in rows
        ],
    )
    emit(
        "Extension: chaos sweeps — detection-driven resilience invariants",
        table,
        artifact="chaos.txt",
    )
    write_telemetry("chaos", {"rows": rows})
    for row in rows:
        assert row["ok"], row["violations"]
        # Every sweep injected real faults and every true death was found.
        assert row["faults"] > 0
