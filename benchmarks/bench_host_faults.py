"""What host-fault supervision costs: overhead when healthy, recovery
price when not.

Two measurements on a fixed DSA workload (Keyword at 8 cores — cheap
enough that pool management, not simulation, dominates, which is the
worst case for supervision overhead):

1. **Supervision overhead** — identical fault-free parallel synthesis
   with supervision off vs on. Supervision adds per-dispatch bookkeeping
   (deadline computation, EWMA update, sequence numbering) but no extra
   simulations, so the overhead must stay modest and the results
   bit-identical.
2. **Recovery cost** — the same synthesis under seeded host-chaos plans
   (worker crashes and hangs). Each fired fault forces retries and a
   pool rebuild; the run must still be bit-identical to fault-free, and
   the telemetry records the wall-clock price per injected fault.

Recorded as one JSON telemetry document
(``benchmarks/out/host_faults.json``) for trend tracking.
"""

from conftest import emit
from repro.bench import get_spec, load_benchmark
from repro.core import SynthesisOptions, synthesize_layout
from repro.schedule.anneal import AnnealConfig
from repro.search import RetryPolicy, run_host_chaos
from repro.viz import render_table
from telemetry import write_telemetry

BENCH = "Keyword"
NUM_CORES = 8
WORKERS = 2
CHAOS_RUNS = 4

#: Short deadlines and near-zero backoff: the benchmark measures the
#: recovery machinery, not the default policy's patience with slow hosts.
POLICY = RetryPolicy(
    timeout_mult=8.0, timeout_floor=2.0, max_retries=3,
    backoff_base=0.01, backoff_cap=0.1,
)


def search_config() -> AnnealConfig:
    return AnnealConfig(seed=0, max_iterations=8, max_evaluations=400)


def synthesize(ctx, supervise: bool):
    return synthesize_layout(
        load_benchmark(BENCH),
        ctx.profile(BENCH),
        NUM_CORES,
        options=SynthesisOptions(
            anneal=search_config(),
            hints=get_spec(BENCH).hints,
            workers=WORKERS,
            supervise=supervise,
            retry_policy=POLICY if supervise else None,
        ),
    )


def run_all(ctx):
    unsupervised = synthesize(ctx, supervise=False)
    supervised = synthesize(ctx, supervise=True)
    chaos = run_host_chaos(
        load_benchmark(BENCH),
        ctx.profile(BENCH),
        NUM_CORES,
        options=SynthesisOptions(
            anneal=search_config(), hints=get_spec(BENCH).hints
        ),
        runs=CHAOS_RUNS,
        base_seed=0,
        workers=WORKERS,
        policy=POLICY,
    )
    return unsupervised, supervised, chaos


def test_host_fault_costs(benchmark, ctx):
    unsupervised, supervised, chaos = benchmark.pedantic(
        run_all, args=(ctx,), iterations=1, rounds=1
    )

    # Supervision is result-transparent...
    assert supervised.estimated_cycles == unsupervised.estimated_cycles
    assert supervised.layout.as_dict() == unsupervised.layout.as_dict()
    assert supervised.history == unsupervised.history
    # ...and fault-free it recovers nothing.
    stats = supervised.search_metrics["supervision"]
    assert stats["worker_retries"] == 0
    assert stats["pool_rebuilds"] == 0

    # The chaos sweep held every invariant and actually fired faults.
    assert chaos.ok, chaos.describe()
    fired = chaos.total("injected_crashes") + chaos.total("injected_hangs")
    assert fired >= 1
    assert chaos.total("worker_retries") >= fired

    overhead = (
        supervised.wall_seconds / unsupervised.wall_seconds
        if unsupervised.wall_seconds
        else 1.0
    )
    faulted = [run for run in chaos.runs if not run.plan.is_empty()]
    recovery_rows = []
    for run in faulted:
        run_fired = int(run.supervision.get("injected_crashes", 0)) + int(
            run.supervision.get("injected_hangs", 0)
        )
        cost = run.report.wall_seconds - supervised.wall_seconds
        recovery_rows.append(
            [f"plan {run.index}", len(run.plan.faults), run_fired,
             int(run.supervision.get("worker_retries", 0)),
             int(run.supervision.get("pool_rebuilds", 0)),
             f"{run.report.wall_seconds:.2f}s",
             f"{cost:+.2f}s"]
        )

    table = render_table(
        ["Run", "Planned", "Fired", "Retries", "Rebuilds", "Wall", "vs clean"],
        [
            ["unsupervised", "-", "-", "-", "-",
             f"{unsupervised.wall_seconds:.2f}s", "-"],
            ["supervised", 0, 0, 0, 0,
             f"{supervised.wall_seconds:.2f}s",
             f"{supervised.wall_seconds - unsupervised.wall_seconds:+.2f}s"],
        ]
        + recovery_rows,
    )
    emit(
        f"Host-fault supervision: overhead and recovery "
        f"({BENCH}, {NUM_CORES} cores, {WORKERS} workers)",
        table
        + f"\n\nsupervision overhead: {overhead:.2f}x (fault-free)"
        + f"\nchaos invariants:     all held "
        f"({fired} fault(s) fired, {chaos.total('worker_retries')} "
        f"retries, {chaos.total('pool_rebuilds')} rebuilds)",
        artifact="host_faults.txt",
    )
    write_telemetry(
        "host_faults",
        {
            "benchmark": BENCH,
            "num_cores": NUM_CORES,
            "workers": WORKERS,
            "estimated_cycles": supervised.estimated_cycles,
            "unsupervised": {
                "wall_seconds": unsupervised.wall_seconds,
                "search": unsupervised.search_metrics,
            },
            "supervised": {
                "wall_seconds": supervised.wall_seconds,
                "search": supervised.search_metrics,
            },
            "supervision_overhead": overhead,
            "chaos": {
                "runs": CHAOS_RUNS,
                "ok": chaos.ok,
                "fired": fired,
                "worker_retries": chaos.total("worker_retries"),
                "pool_rebuilds": chaos.total("pool_rebuilds"),
                "serial_fallbacks": chaos.total("serial_fallbacks"),
                "per_plan": [
                    {
                        "index": run.index,
                        "plan": run.plan.describe(),
                        "wall_seconds": (
                            run.report.wall_seconds
                            if run.report is not None
                            else None
                        ),
                        "supervision": run.supervision,
                    }
                    for run in chaos.runs
                ],
            },
        },
    )
