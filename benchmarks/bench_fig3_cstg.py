"""Figure 3 — the CSTG of the keyword counting example with profile
annotations (Markov model): allocatable states drawn double, solid task
transitions labelled <time, probability>, dashed new-object edges labelled
with expected object counts."""

from conftest import emit
from repro.analysis.astate import AState
from repro.bench import load_benchmark
from repro.core import annotated_cstg, profile_program
from repro.viz import cstg_to_dot


def build_fig3():
    compiled = load_benchmark("Keyword")
    # The paper's Figure 3 profile created 4 Text sections.
    profile = profile_program(compiled, ["4"])
    cstg = annotated_cstg(compiled, profile)
    return compiled, profile, cstg


def test_fig3_cstg(benchmark):
    compiled, profile, cstg = benchmark.pedantic(
        build_fig3, iterations=1, rounds=1
    )

    emit(
        "Figure 3: CSTG for the keyword counting example",
        cstg.format() + "\n\nDOT:\n" + cstg_to_dot(cstg, "fig3-keyword-cstg"),
        artifact="fig3_cstg.txt",
    )

    # -- shape assertions mirroring the paper's figure ------------------------
    # Text is allocated in {process} and transitions process -> submit -> {}.
    process = cstg.node(("Text", AState.make(["process"])))
    assert process.alloc_sites, "Text must be allocatable in {process}"
    transitions = {
        (e.src, e.dst): e for e in cstg.transitions_of_task("processText")
    }
    assert (
        ("Text", AState.make(["process"])),
        ("Text", AState.make(["submit"])),
    ) in transitions

    # The startup task's new-object edge carries the expected count 4
    # (Figure 3 labels the Text edge with 4).
    text_edges = [
        e for e in cstg.new_edges_of_task("startup") if e.dst[0] == "Text"
    ]
    assert len(text_edges) == 1 and text_edges[0].avg_count == 4.0

    # mergeIntermediateResult's two exits split 75%/25% in the paper; with 4
    # sections our merge takes the continue exit 3 times and finishes once.
    merge_probs = sorted(
        e.probability
        for e in cstg.transitions_of_task("mergeIntermediateResult")
        if e.src[0] == "Results"
    )
    assert merge_probs == [0.25, 0.75]
