"""What the serve-layer failure story costs: a timed net-chaos sweep.

One sweep of :func:`repro.serve.netchaos.run_net_chaos` (4 seeded plans
against a real daemon subprocess; plan 0 is the fault-free control)
measures the wall-clock price of the full failure machinery: proxy
faults (resets, truncations, garbage, delays) absorbed by the retrying
client, an injected flush failure with degradation reporting, and a
mid-request SIGKILL with restart + cache durability check.

The invariants the harness machine-checks (typed outcomes, result
bit-identity, daemon liveness, cache durability, degradation honesty,
fault/retry accounting) are re-asserted here; the telemetry document
(``benchmarks/out/net_chaos.json``) records the per-plan fault and
retry accounting plus the sweep wall time for trend tracking.
"""

import time

from conftest import emit
from repro.serve import run_net_chaos
from repro.viz import render_table
from telemetry import write_telemetry

BENCH = "Keyword"
NUM_CORES = 4
PLANS = 4  # control, flush_fail+proxy, kill+proxy, proxy-only


def run_sweep(workdir):
    started = time.perf_counter()
    report = run_net_chaos(
        plans=PLANS,
        base_seed=0,
        workdir=workdir,
        bench=BENCH,
        cores=NUM_CORES,
        client_timeout=1.0,
        delay_seconds=1.6,
    )
    wall = time.perf_counter() - started
    return report, wall


def test_net_chaos_sweep_cost(benchmark, tmp_path_factory):
    workdir = str(tmp_path_factory.mktemp("netchaos"))
    report, wall = benchmark.pedantic(
        run_sweep, args=(workdir,), iterations=1, rounds=1
    )

    # Every machine-checked invariant held, and the sweep was not a
    # no-op: faults fired and each fired fault forced at least one
    # client retry, while the control plan touched nothing.
    assert report.ok, report.describe()
    assert report.shutdown_exit == 0
    assert report.total_fired() >= 1
    assert report.total_retries() >= report.total_fired()
    control = report.runs[0]
    assert control.plan.is_empty()
    assert control.retries == 0 and not control.fired

    rows = [
        [
            f"plan {run.index}",
            run.plan.describe().replace("net chaos: ", ""),
            run.calls,
            len(run.fired),
            run.retries,
            len(run.typed_errors),
            "ok" if run.ok else "VIOLATED",
        ]
        for run in report.runs
    ]
    table = render_table(
        ["Run", "Plan", "Calls", "Fired", "Retries", "Typed errors", "Verdict"],
        rows,
    )
    kills = sum(1 for run in report.runs if run.plan.kill)
    flush_fails = sum(1 for run in report.runs if run.plan.flush_fail)
    emit(
        f"Net chaos: serve-layer failure story ({BENCH}, {NUM_CORES} cores)",
        table
        + f"\n\nsweep wall time:  {wall:.2f}s for {PLANS} plan(s)"
        + f"\nproxy faults:     {report.total_fired()} fired, "
        f"{report.total_retries()} client retries"
        + f"\ndaemon kills:     {kills} (restart + cache durability checked)"
        + f"\nflush failures:   {flush_fails} (degradation reporting checked)"
        + f"\nshutdown exit:    {report.shutdown_exit}"
        + "\nall invariants held: True",
        artifact="net_chaos.txt",
    )
    write_telemetry(
        "net_chaos",
        {
            "benchmark": BENCH,
            "num_cores": NUM_CORES,
            "plans": PLANS,
            "wall_seconds": wall,
            "daemon_kills": kills,
            "flush_failures": flush_fails,
            "report": report.as_dict(),
        },
    )
