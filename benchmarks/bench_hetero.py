"""Extension: heterogeneous cores (paper §4.6).

The paper notes its approach extends to heterogeneous cores "by simply
extending the simulation to model these factors". We model a big.LITTLE-
style 16-core part (8 fast cores at 2x, 8 slow at 0.5x) and compare a
heterogeneity-aware synthesis (the scheduling simulator sees the speeds)
against a heterogeneity-blind one (synthesized as if cores were uniform),
both executed on the heterogeneous machine."""

from conftest import bench_config, emit
from repro.bench import load_benchmark
from repro.core import RunOptions, SynthesisOptions, run_layout, synthesize_layout
from repro.viz import render_table

NUM_CORES = 16
#: cores 0-7 are fast (2x), cores 8-15 slow (0.5x)
SPEEDS = {core: (2.0 if core < 8 else 0.5) for core in range(NUM_CORES)}
BENCHES = ["Fractal", "MonteCarlo"]


def run_all(ctx):
    rows = []
    for name in BENCHES:
        compiled = load_benchmark(name)
        args = ctx.args(name)
        profile = ctx.profile(name)

        aware = synthesize_layout(
            compiled, profile, NUM_CORES,
            options=SynthesisOptions(
                seed=0, anneal=bench_config(), core_speeds=SPEEDS
            ),
        ).layout
        blind = ctx.synthesis_report(name, num_cores=NUM_CORES).layout

        hetero = RunOptions(core_speeds=SPEEDS)
        aware_run = run_layout(compiled, aware, args, options=hetero)
        blind_run = run_layout(compiled, blind, args, options=hetero)
        assert aware_run.stdout == blind_run.stdout
        rows.append(
            {
                "name": name,
                "aware": aware_run.total_cycles,
                "blind": blind_run.total_cycles,
                "gain": blind_run.total_cycles / aware_run.total_cycles,
            }
        )
    return rows


def test_heterogeneous_synthesis(benchmark, ctx):
    rows = benchmark.pedantic(run_all, args=(ctx,), iterations=1, rounds=1)

    table = render_table(
        ["Benchmark", "Hetero-aware (cyc)", "Hetero-blind (cyc)", "Gain"],
        [
            [r["name"], r["aware"], r["blind"], f"{r['gain']:.2f}x"]
            for r in rows
        ],
    )
    emit(
        f"Extension: heterogeneous cores ({NUM_CORES}-core big.LITTLE, "
        "8 fast @2x + 8 slow @0.5x)",
        table,
        artifact="hetero.txt",
    )

    for r in rows:
        # Synthesis that models the speeds never loses to blind synthesis,
        # and wins visibly on at least one benchmark.
        assert r["aware"] <= r["blind"] * 1.02, r["name"]
    assert any(r["gain"] > 1.05 for r in rows)
