"""Ablations of the synthesis search (DESIGN.md §5, items 1-2).

1. *Directed* vs *undirected* annealing: DSA's critical-path-guided moves
   against random moves only, at equal evaluation budget.
2. *Transformation rules* vs locality-only placement: the best estimate
   reachable when the data-parallelization and rate-matching rules are
   disabled (every group gets one replica).
"""

from conftest import emit
from repro.bench import get_spec
from repro.core import annotated_cstg
from repro.schedule.anneal import AnnealConfig, DirectedSimulatedAnnealing
from repro.schedule.coregroup import build_group_graph
from repro.schedule.mapping import seed_layouts
from repro.schedule.rules import suggest_replicas
from repro.schedule.simulator import simulate
from repro.viz import render_table

NUM_CORES = 16
BENCHES = ["Tracking", "KMeans", "FilterBank"]
BUDGET = 120


def run_search(ctx, name, use_critical_path, seed=7):
    compiled = ctx.compiled(name)
    profile = ctx.profile(name)
    config = AnnealConfig(
        seed=seed,
        initial_candidates=4,
        max_iterations=25,
        max_evaluations=BUDGET,
        patience=2,
        continue_probability=0.5,
        use_critical_path=use_critical_path,
    )
    dsa = DirectedSimulatedAnnealing(
        compiled, profile, NUM_CORES, config=config, hints=get_spec(name).hints
    )
    return dsa.run()


def locality_only_estimate(ctx, name):
    compiled = ctx.compiled(name)
    profile = ctx.profile(name)
    cstg = annotated_cstg(compiled, profile)
    graph = build_group_graph(compiled.info, cstg, profile)
    suggestions = suggest_replicas(
        compiled.info, graph, profile, NUM_CORES,
        enable_data_parallel=False, enable_rate_match=False,
    )
    layouts = seed_layouts(compiled.info, graph, suggestions, NUM_CORES)
    return min(
        simulate(compiled, layout, profile,
                        hints=get_spec(name).hints).total_cycles
        for layout in layouts
    )


def run_all(ctx):
    rows = []
    for name in BENCHES:
        directed = run_search(ctx, name, use_critical_path=True)
        undirected = run_search(ctx, name, use_critical_path=False)
        locality = locality_only_estimate(ctx, name)
        rows.append(
            {
                "name": name,
                "directed": directed.best_cycles,
                "undirected": undirected.best_cycles,
                "locality": locality,
            }
        )
    return rows


def test_ablation_dsa(benchmark, ctx):
    rows = benchmark.pedantic(run_all, args=(ctx,), iterations=1, rounds=1)

    table = render_table(
        [
            "Benchmark",
            "DSA (directed)",
            "Undirected anneal",
            "Locality-only rules",
            "dir/undir",
            "dir/locality",
        ],
        [
            [
                r["name"],
                r["directed"],
                r["undirected"],
                r["locality"],
                f"{r['undirected'] / r['directed']:.2f}x",
                f"{r['locality'] / r['directed']:.2f}x",
            ]
            for r in rows
        ],
    )
    emit(
        f"Ablation: search strategy at {NUM_CORES} cores "
        f"(budget {BUDGET} evaluations)",
        table,
        artifact="ablation_dsa.txt",
    )

    for r in rows:
        # The directed search never loses to the undirected one, and the
        # parallelizing rules are essential: locality-only placement is far
        # slower than the synthesized implementation.
        assert r["directed"] <= r["undirected"] * 1.02, r["name"]
        assert r["locality"] > 2 * r["directed"], r["name"]
