"""Extension: fault-injection recovery latency and zero-fault overhead.

Two claims of the `repro.fault` subsystem, measured:

1. **Zero-fault overhead.** With ``fault_plan=None`` the machine takes
   exactly the seed code paths: cycle counts on all six paper benchmarks
   are *bit-identical* to runs without the config field. The fault
   machinery is pay-for-what-you-use.
2. **Bounded recovery latency.** Crashing one worker core mid-run adds a
   modest cycle penalty — the rolled-back invocation replays, resident
   objects migrate at mesh message cost, and the survivors absorb the dead
   core's share of the pipeline. We report the penalty (recovery latency)
   for a crash at 25%, 50%, and 75% of the fault-free runtime, on an
   8-core synthesized layout, with exactly-once commit accounting.
"""

from conftest import emit
from repro.bench import PAPER_BENCHMARKS
from repro.core import run_layout, single_core_layout
from repro.fault import FaultPlan
from repro.runtime.machine import MachineConfig
from repro.viz import render_table


def run_overhead(ctx):
    rows = []
    for name in PAPER_BENCHMARKS:
        compiled = ctx.compiled(name)
        args = ctx.args(name)
        base = ctx.one_core_run(name)
        gated = run_layout(
            compiled,
            single_core_layout(compiled),
            args,
            config=MachineConfig(fault_plan=None, validate=True),
        )
        rows.append(
            {
                "name": name,
                "base": base.total_cycles,
                "gated": gated.total_cycles,
                "identical": base.total_cycles == gated.total_cycles,
            }
        )
    return rows


def run_recovery(ctx):
    rows = []
    for name in ["Keyword", "Fractal", "MonteCarlo"]:
        compiled = ctx.compiled(name)
        args = ctx.args(name)
        layout = ctx.synthesis_report(name, num_cores=8).layout
        base = run_layout(compiled, layout, args)
        used = layout.cores_used()
        victim = used[-1] if len(used) > 1 else None
        for fraction in (0.25, 0.50, 0.75):
            if victim is None:
                continue
            cycle = int(base.total_cycles * fraction)
            plan = FaultPlan.single_crash(victim, cycle)
            faulted = run_layout(
                compiled,
                layout,
                args,
                config=MachineConfig(fault_plan=plan, validate=True),
            )
            rec = faulted.recovery
            rows.append(
                {
                    "name": name,
                    "victim": victim,
                    "fraction": fraction,
                    "base": base.total_cycles,
                    "faulted": faulted.total_cycles,
                    "latency": faulted.total_cycles - base.total_cycles,
                    "replayed": rec.tasks_replayed,
                    "migrated": rec.objects_migrated,
                    "downtime": rec.downtime_cycles,
                    "exactly_once": rec.exactly_once(),
                    "output_ok": faulted.stdout == base.stdout,
                }
            )
    return rows


def test_fault_recovery(benchmark, ctx):
    overhead, recovery = benchmark.pedantic(
        lambda c: (run_overhead(c), run_recovery(c)),
        args=(ctx,),
        iterations=1,
        rounds=1,
    )

    o_table = render_table(
        ["benchmark", "no-config cycles", "fault_plan=None cycles", "identical"],
        [
            [r["name"], f"{r['base']:,}", f"{r['gated']:,}", str(r["identical"])]
            for r in overhead
        ],
    )
    r_table = render_table(
        ["benchmark", "crash@", "base", "faulted", "latency", "replayed",
         "migrated", "downtime", "1x-commit", "output ok"],
        [
            [
                r["name"],
                f"{r['fraction']:.0%}",
                f"{r['base']:,}",
                f"{r['faulted']:,}",
                f"{r['latency']:+,}",
                r["replayed"],
                r["migrated"],
                f"{r['downtime']:,}",
                str(r["exactly_once"]),
                str(r["output_ok"]),
            ]
            for r in recovery
        ],
    )
    emit(
        "Extension: fault recovery — zero-fault overhead + recovery latency",
        o_table + "\n\n" + r_table,
        artifact="fault_recovery.txt",
    )

    # Zero-fault overhead must be exactly zero (bit-identical cycles).
    for row in overhead:
        assert row["identical"], row

    for row in recovery:
        # Recovery must preserve the answer and commit exactly once.
        assert row["output_ok"], row
        assert row["exactly_once"], row
        # Recovery latency stays a small fraction of the run: losing one of
        # eight cores mid-run should not double the runtime.
        assert row["faulted"] < row["base"] * 2.0, row
