"""Figure 7 — speedups of the six benchmarks on 62 cores.

For each benchmark we run the single-core C-baseline substitute, the
single-core Bamboo version, and the synthesized 62-core Bamboo version, and
report the two speedups plus the Bamboo overhead (§5.5). The paper's rows,
for reference:

    benchmark    1-core C  1-core Bamboo  62-core  spd/Bamboo  spd/C  ovh
    Tracking       405.2      406.4         15.5     26.2      26.1   0.3%
    KMeans        1124.6     1243.8         32.0     38.9      35.1  10.6%
    MonteCarlo      44.4       47.0          1.3     36.2      34.2   5.9%
    FilterBank     554.6      554.9         14.8     37.5      37.5   0.1%
    Fractal        162.5      172.6          2.8     61.6      58.0   6.2%
    Series        1774.7     1885.7         30.8     61.2      57.6   6.3%

The DSA optimization times of §5.1 are reported alongside.
"""

from conftest import emit
from repro.bench import PAPER_BENCHMARKS
from repro.viz import render_table
from telemetry import write_telemetry

#: The paper's 62-core speedups vs 1-core Bamboo, for the report.
PAPER_SPEEDUPS = {
    "Tracking": 26.2,
    "KMeans": 38.9,
    "MonteCarlo": 36.2,
    "FilterBank": 37.5,
    "Fractal": 61.6,
    "Series": 61.2,
}


def run_all(ctx):
    rows = []
    for name in PAPER_BENCHMARKS:
        seq = ctx.sequential_run(name)
        one = ctx.one_core_run(name)
        many = ctx.many_core_run(name)
        report = ctx.synthesis_report(name)
        assert seq.stdout == one.stdout == many.stdout, name
        rows.append(
            {
                "name": name,
                "seq": seq.cycles,
                "one": one.total_cycles,
                "many": many.total_cycles,
                "speedup_bamboo": one.total_cycles / many.total_cycles,
                "speedup_seq": seq.cycles / many.total_cycles,
                "overhead": (one.total_cycles - seq.cycles) / seq.cycles,
                "dsa_seconds": report.wall_seconds,
                "dsa_evals": report.evaluations,
                "busy_fraction": many.busy_fraction(),
                "metrics": many.metrics,
            }
        )
    return rows


def test_fig7_speedups(benchmark, ctx):
    rows = benchmark.pedantic(run_all, args=(ctx,), iterations=1, rounds=1)

    table = render_table(
        [
            "Benchmark",
            "1-Core C (cyc)",
            "1-Core Bamboo",
            "62-Core Bamboo",
            "Speedup/Bamboo",
            "Speedup/C",
            "Overhead",
            "Paper spd",
            "DSA (s)",
        ],
        [
            [
                r["name"],
                r["seq"],
                r["one"],
                r["many"],
                f"{r['speedup_bamboo']:.1f}x",
                f"{r['speedup_seq']:.1f}x",
                f"{r['overhead']:.1%}",
                f"{PAPER_SPEEDUPS[r['name']]:.1f}x",
                f"{r['dsa_seconds']:.1f}",
            ]
            for r in rows
        ],
    )
    emit("Figure 7: speedups on 62 cores", table, artifact="fig7_speedup.txt")
    write_telemetry("fig7_speedup", {"rows": rows})

    by_name = {r["name"]: r for r in rows}

    # -- shape assertions (who wins, roughly what factor) ------------------------
    for r in rows:
        # Large many-core speedups for every benchmark (paper: 26.2-61.6x).
        assert r["speedup_bamboo"] > 12, r["name"]
        # Small single-core overhead (paper: 0.1%-10.6%).
        assert 0.0 < r["overhead"] < 0.12, r["name"]

    # Fractal is the best-scaling benchmark, Tracking the worst (paper order).
    best = max(rows, key=lambda r: r["speedup_bamboo"])["name"]
    worst = min(rows, key=lambda r: r["speedup_bamboo"])["name"]
    assert best == "Fractal"
    assert worst == "Tracking"
    # The embarrassingly parallel pair outruns the merge-bound pair.
    assert (
        by_name["Series"]["speedup_bamboo"]
        > by_name["Tracking"]["speedup_bamboo"]
    )
