"""Ablation: exit-selection policy in the scheduling simulator (§4.4).

The simulator must predict which taskexit each simulated invocation takes.
Our default realizes the paper's count-matching criterion exactly by
replaying the profiled exit order ("sequence"); the ablation baseline uses
only aggregate per-exit counts ("counts"). Round-structured programs like
KMeans expose the difference: aggregate counts cannot express "every 62nd
aggregate invocation ends a round", so the counts policy mistimes round
boundaries and mis-estimates the execution."""

from conftest import emit
from repro.bench import get_spec
from repro.core import single_core_layout
from repro.schedule.simulator import simulate
from repro.viz import render_table

BENCHES = ["KMeans", "Keyword", "MonteCarlo"]


def estimate(ctx, name, layout, policy):
    return simulate(
        ctx.compiled(name),
        layout,
        ctx.profile(name),
        hints=get_spec(name).hints,
        exit_policy=policy,
    )


def run_all(ctx):
    rows = []
    for name in BENCHES:
        compiled = ctx.compiled(name)
        layout = single_core_layout(compiled)
        real = ctx.one_core_run(name).total_cycles
        sequence = estimate(ctx, name, layout, "sequence")
        counts = estimate(ctx, name, layout, "counts")
        rows.append(
            {
                "name": name,
                "real": real,
                "sequence": sequence.total_cycles,
                "counts": counts.total_cycles,
                "seq_err": (sequence.total_cycles - real) / real,
                "cnt_err": (counts.total_cycles - real) / real,
            }
        )
    return rows


def test_ablation_exit_policy(benchmark, ctx):
    rows = benchmark.pedantic(run_all, args=(ctx,), iterations=1, rounds=1)

    table = render_table(
        [
            "Benchmark",
            "Real (cyc)",
            "Sequence est",
            "err",
            "Counts-only est",
            "err",
        ],
        [
            [
                r["name"],
                r["real"],
                r["sequence"],
                f"{r['seq_err']:+.1%}",
                r["counts"],
                f"{r['cnt_err']:+.1%}",
            ]
            for r in rows
        ],
    )
    emit(
        "Ablation: simulator exit-selection policy (1-core layouts)",
        table,
        artifact="ablation_simpolicy.txt",
    )

    for r in rows:
        assert abs(r["seq_err"]) < 0.05, r["name"]
        # The sequence policy is at least as accurate everywhere.
        assert abs(r["seq_err"]) <= abs(r["cnt_err"]) + 1e-9, r["name"]
    # And on the round-structured benchmark the counts-only policy is badly
    # wrong (it never completes the later rounds).
    kmeans = next(r for r in rows if r["name"] == "KMeans")
    assert abs(kmeans["cnt_err"]) > 0.3
