"""Figure 9 — accuracy of the scheduling simulator.

For every benchmark we compare the scheduling simulator's estimated cycle
count against the machine's real cycle count, for the single-core Bamboo
layout and for the synthesized 62-core layout. Paper errors: within ±1.7%
on one core and within -7.7%..0% on 62 cores (the simulator slightly
underestimates because tasks slow down under real communication load)."""

from conftest import emit
from repro.bench import PAPER_BENCHMARKS, get_spec
from repro.core import single_core_layout
from repro.schedule.simulator import simulate
from repro.viz import render_table


def run_all(ctx):
    rows = []
    for name in PAPER_BENCHMARKS:
        compiled = ctx.compiled(name)
        profile = ctx.profile(name)
        hints = get_spec(name).hints

        one_layout = single_core_layout(compiled)
        one_est = simulate(compiled, one_layout, profile, hints=hints)
        one_real = ctx.one_core_run(name)

        many_report = ctx.synthesis_report(name)
        many_est = simulate(
            compiled, many_report.layout, profile, hints=hints
        )
        many_real = ctx.many_core_run(name)

        rows.append(
            {
                "name": name,
                "one_est": one_est.total_cycles,
                "one_real": one_real.total_cycles,
                "many_est": many_est.total_cycles,
                "many_real": many_real.total_cycles,
            }
        )
    return rows


def test_fig9_accuracy(benchmark, ctx):
    rows = benchmark.pedantic(run_all, args=(ctx,), iterations=1, rounds=1)

    def err(estimated, real):
        return (estimated - real) / real

    table = render_table(
        [
            "Benchmark",
            "1-Core est",
            "1-Core real",
            "err",
            "62-Core est",
            "62-Core real",
            "err",
        ],
        [
            [
                r["name"],
                r["one_est"],
                r["one_real"],
                f"{err(r['one_est'], r['one_real']):+.1%}",
                r["many_est"],
                r["many_real"],
                f"{err(r['many_est'], r['many_real']):+.1%}",
            ]
            for r in rows
        ],
    )
    emit(
        "Figure 9: accuracy of the scheduling simulator",
        table,
        artifact="fig9_accuracy.txt",
    )

    for r in rows:
        one_error = err(r["one_est"], r["one_real"])
        many_error = err(r["many_est"], r["many_real"])
        # Paper: 1-core errors within about ±2%.
        assert abs(one_error) < 0.05, (r["name"], one_error)
        # Paper: 62-core errors within about ±8%, skewed to underestimates.
        assert abs(many_error) < 0.12, (r["name"], many_error)
