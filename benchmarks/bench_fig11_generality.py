"""Figure 11 — generality of synthesized implementations (§5.4).

For each benchmark: double the workload (Input_double), profile it, and
compare running Input_double under (a) the layout synthesized from the
original profile and (b) the layout synthesized from the doubled profile.
The paper finds the speedups similar for most benchmarks — the synthesized
binaries generalize — with MonteCarlo improving under Profile_double
because the larger input justifies a pipelined implementation."""

from conftest import emit
from repro.bench import PAPER_BENCHMARKS
from repro.core import run_layout
from repro.viz import render_table


def run_all(ctx):
    rows = []
    for name in PAPER_BENCHMARKS:
        compiled = ctx.compiled(name)
        double_args = ctx.args(name, double=True)

        layout_original = ctx.synthesis_report(name, double=False).layout
        layout_double = ctx.synthesis_report(name, double=True).layout

        one = ctx.one_core_run(name, double=True)
        with_original = run_layout(compiled, layout_original, double_args)
        with_double = ctx.many_core_run(name, double=True)

        assert one.stdout == with_original.stdout == with_double.stdout, name
        rows.append(
            {
                "name": name,
                "one": one.total_cycles,
                "orig": with_original.total_cycles,
                "dbl": with_double.total_cycles,
                "speedup_orig": one.total_cycles / with_original.total_cycles,
                "speedup_dbl": one.total_cycles / with_double.total_cycles,
            }
        )
    return rows


def test_fig11_generality(benchmark, ctx):
    rows = benchmark.pedantic(run_all, args=(ctx,), iterations=1, rounds=1)

    table = render_table(
        [
            "Benchmark",
            "1-Core (cyc)",
            "62-Core Profile_orig",
            "Speedup",
            "62-Core Profile_double",
            "Speedup",
        ],
        [
            [
                r["name"],
                r["one"],
                r["orig"],
                f"{r['speedup_orig']:.1f}x",
                r["dbl"],
                f"{r['speedup_dbl']:.1f}x",
            ]
            for r in rows
        ],
    )
    emit(
        "Figure 11: generality of synthesized implementations "
        "(both layouts executed on Input_double)",
        table,
        artifact="fig11_generality.txt",
    )

    for r in rows:
        # The original-profile layout must still deliver a large speedup on
        # the doubled input (the headline generality claim).
        assert r["speedup_orig"] > 10, r["name"]
        # And it lands within 2x of the layout tuned for the doubled input.
        assert r["speedup_orig"] > 0.5 * r["speedup_dbl"], r["name"]

    # Doubling the workload should not degrade scalability: on average the
    # speedups at Input_double are at least as large as at Input_original
    # (the paper's Figure 11 speedups exceed Figure 7's).
    avg_speedup = sum(r["speedup_dbl"] for r in rows) / len(rows)
    assert avg_speedup > 20
