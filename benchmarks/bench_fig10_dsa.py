"""Figure 10 — efficiency of directed simulated annealing.

Following §5.3: on a 16-core machine we (1) exhaustively enumerate candidate
implementations (task-granularity placements with per-task replica counts)
and plot the distribution of their estimated execution times, and (2) run
DSA from many random starting candidates and plot the distribution of the
layouts it converges to. The paper's claims: good implementations are rare
in the raw candidate space, and DSA reaches the best-performing bucket from
at least 98% of random starts (Tracking is excluded — exhaustive search is
prohibitively expensive even at 16 cores, §5.3).
"""

import random

from conftest import emit
from repro.bench import get_spec
from repro.core import annotated_cstg
from repro.schedule.anneal import AnnealConfig, DirectedSimulatedAnnealing
from repro.schedule.coregroup import build_group_graph
from repro.schedule.mapping import enumerate_layouts
from repro.schedule.simulator import simulate
from repro.search import SimCache
from repro.viz import render_histogram

NUM_CORES = 16
#: §5.3 uses 1000 random starts; scaled to the simulator substrate.
DSA_STARTS = 25
FIG10_BENCHMARKS = ["KMeans", "MonteCarlo", "FilterBank", "Fractal", "Series"]


def candidate_space(compiled, profile):
    cstg = annotated_cstg(compiled, profile)
    graph = build_group_graph(compiled.info, cstg, profile, granularity="task")
    choices = {
        g.group_id: ([1, 2, 4, 8, 12, NUM_CORES - 1, NUM_CORES]
                     if g.replicable else [1])
        for g in graph.groups
    }
    layouts = enumerate_layouts(
        compiled.info, graph, choices, NUM_CORES, limit=4000
    )
    return graph, layouts


def run_benchmark(ctx, name):
    compiled = ctx.compiled(name)
    profile = ctx.profile(name)
    hints = get_spec(name).hints

    graph, layouts = candidate_space(compiled, profile)
    all_estimates = [
        simulate(compiled, layout, profile, hints=hints).total_cycles
        for layout in layouts
    ]
    best = min(all_estimates)

    dsa_results = []
    # One cache shared across all random starts: the profile is fixed, so
    # layouts revisited by later starts are never re-simulated.
    shared_cache = SimCache()
    rng = random.Random(1234)
    for start in range(DSA_STARTS):
        config = AnnealConfig(
            seed=rng.randrange(1 << 30),
            initial_candidates=1,
            max_iterations=12,
            max_evaluations=70,
            patience=2,
            continue_probability=0.5,
        )
        with DirectedSimulatedAnnealing(
            compiled, profile, NUM_CORES, config=config, hints=hints,
            group_graph=graph, cache=shared_cache,
        ) as dsa:
            result = dsa.run()
        dsa_results.append(result.best_cycles)

    # "Best bucket": within 5% of the global best estimate.
    threshold = best * 1.05
    success = sum(1 for v in dsa_results if v <= threshold) / len(dsa_results)
    return {
        "name": name,
        "candidates": len(layouts),
        "all": all_estimates,
        "dsa": dsa_results,
        "best": best,
        "best_rate_all": sum(1 for v in all_estimates if v <= threshold)
        / len(all_estimates),
        "success": success,
    }


def test_fig10_dsa_efficiency(benchmark, ctx):
    results = benchmark.pedantic(
        lambda: [run_benchmark(ctx, name) for name in FIG10_BENCHMARKS],
        iterations=1,
        rounds=1,
    )

    blocks = []
    for r in results:
        blocks.append(
            f"{r['name']}: {r['candidates']} candidate implementations, "
            f"best estimate {r['best']} cycles\n"
            f"  fraction of candidates within 5% of best: "
            f"{r['best_rate_all']:.1%}\n"
            f"  DSA runs reaching within 5% of best:      {r['success']:.1%} "
            f"(paper: >= 98%)\n"
            + render_histogram(
                r["all"], bins=14, label="  all candidates (est. cycles)"
            )
            + "\n"
            + render_histogram(
                r["dsa"], bins=14, label="  DSA results from random starts"
            )
        )
    emit(
        "Figure 10: DSA efficiency at 16 cores",
        "\n\n".join(blocks),
        artifact="fig10_dsa.txt",
    )

    for r in results:
        # Good candidates are rare in the raw space...
        assert r["best_rate_all"] < 0.5, r["name"]
        # ...but DSA finds the best bucket from nearly every random start.
        assert r["success"] >= 0.9, (r["name"], r["success"])
        # And DSA's median result beats the space's median by a wide margin.
        all_sorted = sorted(r["all"])
        dsa_sorted = sorted(r["dsa"])
        assert dsa_sorted[len(dsa_sorted) // 2] < all_sorted[len(all_sorted) // 2]
