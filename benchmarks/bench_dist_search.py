"""Wall-clock scaling of the distributed layout search.

The experiment: the Figure-10 methodology's 25-restart DSA axis
(``bench_fig10_dsa.DSA_STARTS``), run through :mod:`repro.search.dist`
as one coordinator with 1, 2, and 4 local worker subprocesses, plus the
single-host serial baseline. Every configuration must produce the
identical merged result — distribution is purely a wall-clock knob —
and the telemetry document (``benchmarks/out/dist_search.json``)
records the walls, speedups, and dispatch accounting for trend
tracking.

Caveat on reading the numbers: "workers" here are subprocesses on the
*same* host as the coordinator, so scaling tops out at the host's core
count (and the CI runners are small); the interesting signal is the
coordination overhead visible at ``workers=1`` versus the serial
baseline, and that speedup is monotone as workers are added. Shards
also give up the shared simulation cache a single-process restart loop
threads through its restarts (isolation is what makes them pure), so
serial-vs-dist walls are not purely transport overhead.
"""

import hashlib
import time

from conftest import emit
from repro.bench import get_spec
from repro.schedule.anneal import AnnealConfig
from repro.search.dist import (
    JobContext,
    make_restart_shards,
    run_dist_search,
    run_serial_baseline,
)
from repro.viz import render_table
from telemetry import write_telemetry

BENCH = "Keyword"
NUM_CORES = 16
#: the Figure-10 restart count — the natural shard axis
RESTARTS = 25
WORKER_COUNTS = [1, 2, 4]

TEMPLATE = AnnealConfig(
    initial_candidates=1,
    max_iterations=6,
    max_evaluations=60,
    patience=2,
    continue_probability=0.3,
)


def build_job(ctx):
    compiled = ctx.compiled(BENCH)
    profile = ctx.profile(BENCH)
    context = JobContext(
        compiled=compiled,
        profile=profile,
        num_cores=NUM_CORES,
        hints=get_spec(BENCH).hints,
        source_digest=hashlib.sha256(
            compiled.source.encode("utf-8")
        ).hexdigest(),
    )
    shards = make_restart_shards(TEMPLATE, RESTARTS, base_seed=1234)
    return context, shards


def run_configurations(ctx):
    context, shards = build_job(ctx)
    runs = {}

    started = time.perf_counter()
    serial = run_serial_baseline(context, shards)
    runs["serial"] = {
        "wall_seconds": time.perf_counter() - started,
        "key": serial.key(),
        "stats": None,
    }

    for workers in WORKER_COUNTS:
        result = run_dist_search(context, shards, workers=workers)
        runs[f"workers={workers}"] = {
            "wall_seconds": result.wall_seconds,
            "key": result.key(),
            "stats": result.stats,
        }
    return serial, runs


def test_dist_search_scaling(benchmark, ctx):
    serial, runs = benchmark.pedantic(
        run_configurations, args=(ctx,), iterations=1, rounds=1
    )

    # Distribution is a wall-clock knob only: every configuration merged
    # to the identical result, and no run lost or double-counted a shard.
    for name, run in runs.items():
        assert run["key"] == runs["serial"]["key"], name
        if run["stats"] is not None:
            assert run["stats"]["shards_completed"] == RESTARTS, name

    serial_wall = runs["serial"]["wall_seconds"]
    rows = []
    for name, run in runs.items():
        stats = run["stats"] or {}
        rows.append(
            [
                name,
                f"{run['wall_seconds']:.2f}s",
                f"{serial_wall / run['wall_seconds']:.2f}x",
                stats.get("workers_joined", "—"),
                stats.get("dispatches", "—"),
                stats.get("local_executions", "—"),
            ]
        )
    table = render_table(
        ["Config", "Wall", "Speedup", "Joined", "Dispatched", "Local"],
        rows,
    )

    emit(
        f"Distributed search scaling ({BENCH}, {RESTARTS} restarts, "
        f"{NUM_CORES}-core target; workers are same-host subprocesses)",
        table,
    )
    write_telemetry(
        "dist_search",
        {
            "benchmark": BENCH,
            "num_cores": NUM_CORES,
            "restarts": RESTARTS,
            "best_cycles": serial.best_cycles,
            "configurations": {
                name: {
                    "wall_seconds": run["wall_seconds"],
                    "speedup_vs_serial": serial_wall / run["wall_seconds"],
                    "stats": run["stats"],
                }
                for name, run in runs.items()
            },
        },
    )
