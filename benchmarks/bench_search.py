"""The search engine's own performance: memoization and parallel fan-out.

Two measurements on a fixed DSA workload (KMeans at 16 cores, the
Figure 10 setting):

1. **Cache effectiveness** — identical synthesis with the simulation
   cache on vs off. The DSA loop re-scores kept candidates every
   iteration, so the cache converts a large fraction of evaluation
   requests into hits; wall-clock must drop measurably.
2. **Delta re-simulation** — the same synthesis with
   ``delta_sim`` on vs off. Candidates one migration from a simulated
   parent resume from a snapshot instead of replaying the shared
   timeline prefix; results must be bit-identical either way.
3. **Worker sweep** — the same synthesis at ``workers`` 1, 2, and 4.
   Results must be bit-identical across the sweep (the
   :mod:`repro.search` batch contract); wall seconds are recorded per
   worker count.

Both are recorded as one JSON telemetry document
(``benchmarks/out/search.json``) for trend tracking.
"""

import os

from conftest import emit
from repro.bench import get_spec, load_benchmark
from repro.core import SynthesisOptions, synthesize_layout
from repro.schedule.anneal import AnnealConfig
from repro.viz import render_table
from telemetry import write_telemetry

BENCH = "KMeans"
NUM_CORES = 16
WORKER_SWEEP = [1, 2, 4]


def search_config() -> AnnealConfig:
    return AnnealConfig(seed=0, max_iterations=10, max_evaluations=600)


def synthesize(ctx, workers: int, sim_cache: bool, delta_sim: bool = True):
    return synthesize_layout(
        load_benchmark(BENCH),
        ctx.profile(BENCH),
        NUM_CORES,
        options=SynthesisOptions(
            anneal=search_config(),
            hints=get_spec(BENCH).hints,
            workers=workers,
            sim_cache=sim_cache,
            delta_sim=delta_sim,
        ),
    )


def run_all(ctx):
    cached = synthesize(ctx, workers=1, sim_cache=True)
    uncached = synthesize(ctx, workers=1, sim_cache=False)
    no_delta = synthesize(ctx, workers=1, sim_cache=True, delta_sim=False)
    sweep = {1: cached}
    for workers in WORKER_SWEEP[1:]:
        sweep[workers] = synthesize(ctx, workers=workers, sim_cache=True)
    return cached, uncached, no_delta, sweep


def test_search_engine(benchmark, ctx):
    cached, uncached, no_delta, sweep = benchmark.pedantic(
        run_all, args=(ctx,), iterations=1, rounds=1
    )

    # Delta re-simulation is wall-clock only: same search, bit for bit.
    assert no_delta.estimated_cycles == cached.estimated_cycles
    assert no_delta.layout.as_dict() == cached.layout.as_dict()
    assert no_delta.history == cached.history

    # The cache is semantically transparent (unbounded-budget equality is
    # enforced in tests/test_search.py; here budget applies, so only the
    # per-simulation accounting must line up)...
    assert cached.requested_evaluations == (
        cached.evaluations + cached.cache_hits
    )
    assert uncached.cache_hits == 0
    # ...and it must convert enough requests into hits to pay off.
    assert cached.cache_hits > 0
    hit_rate = cached.search_metrics["cache_hit_rate"]
    assert 0.0 < hit_rate < 1.0
    # The headline claim: memoization reduces wall-clock measurably.
    assert cached.wall_seconds < uncached.wall_seconds

    # Worker-count independence on the full-size workload.
    base = sweep[1]
    for workers, report in sweep.items():
        assert report.estimated_cycles == base.estimated_cycles, workers
        assert report.layout.as_dict() == base.layout.as_dict(), workers
        assert report.history == base.history, workers

    rows = [
        ["cache off", 1, uncached.evaluations, uncached.cache_hits,
         f"{uncached.wall_seconds:.2f}s"],
        ["delta off", 1, no_delta.evaluations, no_delta.cache_hits,
         f"{no_delta.wall_seconds:.2f}s"],
    ] + [
        [f"cache on", workers, report.evaluations, report.cache_hits,
         f"{report.wall_seconds:.2f}s"]
        for workers, report in sorted(sweep.items())
    ]
    table = render_table(
        ["Variant", "Workers", "Simulations", "Cache hits", "Wall"],
        rows,
    )
    emit(
        f"Search engine: memoized, parallel DSA ({BENCH}, {NUM_CORES} cores)",
        table
        + f"\n\ncache hit rate: {hit_rate:.1%}"
        + f"\ncache speedup:  "
        f"{uncached.wall_seconds / cached.wall_seconds:.2f}x"
        + f"\ndelta speedup:  "
        f"{no_delta.wall_seconds / cached.wall_seconds:.2f}x"
        + "\ndelta on == delta off: True"
        + "\nworker sweep bit-identical: True"
        + f"\nhost cpus: {os.cpu_count()}"
        " (worker walls only meaningful on a multi-core host)",
        artifact="search.txt",
    )
    write_telemetry(
        "search",
        {
            "benchmark": BENCH,
            "num_cores": NUM_CORES,
            "estimated_cycles": cached.estimated_cycles,
            "cache_off": {
                "wall_seconds": uncached.wall_seconds,
                "search": uncached.search_metrics,
            },
            "cache_on": {
                "wall_seconds": cached.wall_seconds,
                "search": cached.search_metrics,
            },
            "cache_speedup": uncached.wall_seconds / cached.wall_seconds,
            "delta_off": {
                "wall_seconds": no_delta.wall_seconds,
                "search": no_delta.search_metrics,
            },
            "delta_speedup": no_delta.wall_seconds / cached.wall_seconds,
            "delta_bit_identical": True,
            "worker_sweep": {
                str(workers): {
                    "wall_seconds": report.wall_seconds,
                    "search": report.search_metrics,
                }
                for workers, report in sorted(sweep.items())
            },
            "worker_sweep_bit_identical": True,
        },
    )
