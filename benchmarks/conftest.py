"""Shared infrastructure for the benchmark harness.

Every paper table/figure has its own ``bench_*`` file; they share one
session-scoped :class:`ExperimentContext` so expensive artifacts (profiles,
synthesized 62-core layouts, machine runs) are computed once. Reports are
printed to stdout (run with ``-s`` to see them live) and written under
``benchmarks/out/``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

import pytest

from repro.bench import PAPER_CORES, PAPER_MESH_WIDTH, get_spec, load_benchmark
from repro.core import (
    RunOptions,
    SynthesisOptions,
    profile_program,
    run_layout,
    run_sequential,
    single_core_layout,
    synthesize_layout,
)
from repro.schedule.anneal import AnnealConfig

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def write_artifact(name: str, content: str) -> str:
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, name)
    with open(path, "w") as handle:
        handle.write(content)
    return path


def bench_config(seed: int = 0) -> AnnealConfig:
    """DSA configuration used for full benchmark synthesis."""
    return AnnealConfig(seed=seed, max_evaluations=400)


class ExperimentContext:
    """Lazily computed, cached experiment artifacts."""

    def __init__(self):
        self._profiles: Dict[Tuple[str, Tuple[str, ...]], object] = {}
        self._layouts: Dict[Tuple[str, Tuple[str, ...], int], object] = {}
        self._seq: Dict[Tuple[str, Tuple[str, ...]], object] = {}
        self._one: Dict[Tuple[str, Tuple[str, ...]], object] = {}
        self._many: Dict[Tuple[str, Tuple[str, ...], int], object] = {}

    # -- building blocks ----------------------------------------------------

    def compiled(self, name: str):
        return load_benchmark(name)

    def args(self, name: str, double: bool = False) -> List[str]:
        spec = get_spec(name)
        return list(spec.double_args if double else spec.args)

    def profile(self, name: str, double: bool = False):
        key = (name, tuple(self.args(name, double)))
        if key not in self._profiles:
            self._profiles[key] = profile_program(
                self.compiled(name), self.args(name, double)
            )
        return self._profiles[key]

    def synthesis_report(self, name: str, double: bool = False,
                         num_cores: int = PAPER_CORES):
        key = (name, tuple(self.args(name, double)), num_cores)
        if key not in self._layouts:
            self._layouts[key] = synthesize_layout(
                self.compiled(name),
                self.profile(name, double),
                num_cores,
                options=SynthesisOptions(
                    seed=0,
                    anneal=bench_config(),
                    hints=get_spec(name).hints,
                    mesh_width=(
                        PAPER_MESH_WIDTH if num_cores == PAPER_CORES else None
                    ),
                ),
            )
        return self._layouts[key]

    # -- measured runs ---------------------------------------------------------

    def sequential_run(self, name: str, double: bool = False):
        key = (name, tuple(self.args(name, double)))
        if key not in self._seq:
            self._seq[key] = run_sequential(self.compiled(name), self.args(name, double))
        return self._seq[key]

    def one_core_run(self, name: str, double: bool = False):
        key = (name, tuple(self.args(name, double)))
        if key not in self._one:
            self._one[key] = run_layout(
                self.compiled(name),
                single_core_layout(self.compiled(name)),
                self.args(name, double),
            )
        return self._one[key]

    def many_core_run(self, name: str, double: bool = False,
                      num_cores: int = PAPER_CORES):
        key = (name, tuple(self.args(name, double)), num_cores)
        if key not in self._many:
            report = self.synthesis_report(name, double, num_cores)
            # Observed, so every many-core measurement carries its metrics
            # snapshot (utilization, queue depths, cycle accounting) for
            # the telemetry JSON artifacts. Observation never changes the
            # simulated cycle counts (bit-identity is test-enforced).
            self._many[key] = run_layout(
                self.compiled(name), report.layout, self.args(name, double),
                options=RunOptions(observe=True),
            )
        return self._many[key]


@pytest.fixture(scope="session")
def ctx():
    return ExperimentContext()


def emit(title: str, body: str, artifact: Optional[str] = None) -> None:
    """Prints a report block and optionally saves it."""
    banner = "=" * 72
    text = f"\n{banner}\n{title}\n{banner}\n{body}\n"
    print(text)
    if artifact:
        write_artifact(artifact, text)
