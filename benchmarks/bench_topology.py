"""Extension: network topologies (paper §4.6).

The paper notes the approach extends to "new network topologies by simply
extending the simulation to model these factors". Layouts carry an
interconnect shape (mesh / torus / ring). Two regimes:

* **compute-bound** — the synthesized 62-core KMeans layout: transfer
  latency is fully hidden behind task execution, so all topologies give
  identical cycle counts (and identical message counts — only latency can
  differ);
* **latency-bound** — a single keyword section making the round trip
  core 0 → far worker → core 0 with nothing to hide behind: cycle counts
  order exactly by the topology's hop distance to the worker core.
"""

from conftest import emit
from repro.bench import PAPER_MESH_WIDTH, load_benchmark
from repro.core import run_layout
from repro.schedule.layout import Layout
from repro.viz import render_table

TOPOLOGIES = ["mesh", "torus", "ring"]


def compute_bound_rows(ctx):
    compiled = ctx.compiled("KMeans")
    args = ctx.args("KMeans")
    base = ctx.synthesis_report("KMeans").layout
    rows = []
    for topology in TOPOLOGIES:
        layout = Layout.make(
            base.num_cores,
            {task: list(cores) for task, cores in base.as_dict().items()},
            mesh_width=PAPER_MESH_WIDTH,
            topology=topology,
        )
        result = run_layout(compiled, layout, args)
        rows.append(
            {
                "topology": topology,
                "cycles": result.total_cycles,
                "messages": result.messages,
                "stdout": result.stdout,
            }
        )
    return rows


def latency_bound_rows():
    compiled = load_benchmark("Keyword")
    worker_core = 15  # far corner of a 4x4 mesh; adjacent on the ring
    mapping = {task: [0] for task in compiled.info.tasks}
    mapping["processText"] = [worker_core]
    rows = []
    for topology in TOPOLOGIES:
        layout = Layout.make(16, mapping, mesh_width=4, topology=topology)
        result = run_layout(compiled, layout, ["1"])
        rows.append(
            {
                "topology": topology,
                "hops": layout.hops(0, worker_core),
                "cycles": result.total_cycles,
                "stdout": result.stdout,
            }
        )
    return rows


def test_topologies(benchmark, ctx):
    compute_rows, latency_rows = benchmark.pedantic(
        lambda: (compute_bound_rows(ctx), latency_bound_rows()),
        iterations=1,
        rounds=1,
    )

    body = (
        "compute-bound (KMeans, synthesized 62-core layout):\n"
        + render_table(
            ["Topology", "Cycles", "Messages"],
            [
                [r["topology"], r["cycles"], r["messages"]]
                for r in compute_rows
            ],
        )
        + "\n\nlatency-bound (keyword, 1 section, worker on core 15 of 16):\n"
        + render_table(
            ["Topology", "Hops to worker", "Cycles"],
            [[r["topology"], r["hops"], r["cycles"]] for r in latency_rows],
        )
    )
    emit("Extension: interconnect topology", body, artifact="topology.txt")

    # Compute-bound: identical answers and cycle counts — latency hides.
    assert len({r["stdout"] for r in compute_rows}) == 1
    assert len({r["cycles"] for r in compute_rows}) == 1
    assert len({r["messages"] for r in compute_rows}) == 1

    # Latency-bound: answers identical, cycles order with hop distance.
    assert len({r["stdout"] for r in latency_rows}) == 1
    by_hops = sorted(latency_rows, key=lambda r: r["hops"])
    cycles_in_hop_order = [r["cycles"] for r in by_hops]
    assert cycles_in_hop_order == sorted(cycles_in_hop_order)
    assert by_hops[0]["cycles"] < by_hops[-1]["cycles"]
