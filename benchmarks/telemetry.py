"""Structured telemetry for benchmark runs.

Every ``bench_*`` report already prints a human-readable table and saves
it under ``benchmarks/out/``; this module adds a machine-readable twin:
one JSON document per experiment (``benchmarks/out/<name>.json``) with
the run's headline numbers (makespan, speedups) and — when the run was
observed (``MachineConfig.observe``) — the full :mod:`repro.obs` metrics
snapshot (utilization, queue depths, latency histograms, and the
machine-checked cycle accounting).

Every document is stamped with a ``meta`` provenance block
(:func:`repro.obs.runmeta.run_metadata`: git sha, UTC timestamp, python
version, cpu count), so a committed baseline records which tree and
machine produced it.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from conftest import OUT_DIR
from repro.obs.runmeta import run_metadata

SCHEMA = "repro.bench/telemetry-v1"


def telemetry_payload(result) -> Dict[str, object]:
    """The JSON-ready summary of one :class:`MachineResult`."""
    payload: Dict[str, object] = {
        "makespan": result.total_cycles,
        "messages": result.messages,
        "invocations": sum(result.invocations.values()),
        "lock_failures": result.lock_failures,
        "busy_fraction": result.busy_fraction(),
    }
    if result.metrics is not None:
        payload["metrics"] = result.metrics
    return payload


def write_telemetry(name: str, payload: Dict[str, object]) -> str:
    """Writes one experiment's telemetry document; returns its path."""
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, f"{name}.json")
    doc = {
        "schema": SCHEMA,
        "experiment": name,
        "meta": run_metadata(),
        **payload,
    }
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return path


def read_telemetry(name: str) -> Optional[Dict[str, object]]:
    """Loads a previously written telemetry document, if present."""
    path = os.path.join(OUT_DIR, f"{name}.json")
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return json.load(handle)
