"""Figure 8 — the task flow of the Tracking benchmark.

The paper's figure shows three phases (image processing, feature
extraction, feature tracking) with per-piece data parallelism feeding
aggregation steps. We regenerate the task-flow graph from the CSTG and
check the phase structure."""

from conftest import emit
from repro.bench import load_benchmark, get_spec
from repro.core import annotated_cstg, profile_program
from repro.schedule.coregroup import build_group_graph, build_task_edges
from repro.viz import taskflow_to_dot

PHASES = {
    "image processing": ["blurStrip", "gradientStrip"],
    "feature extraction": ["scoreStrip", "collectFeatures"],
    "feature tracking": ["trackFeatures", "mergeTracks"],
}


def build_fig8():
    compiled = load_benchmark("Tracking")
    profile = profile_program(compiled, list(get_spec("Tracking").args))
    cstg = annotated_cstg(compiled, profile)
    edges = build_task_edges(compiled.info, cstg, profile)
    groups = build_group_graph(compiled.info, cstg, profile)
    return compiled, edges, groups


def test_fig8_taskflow(benchmark):
    compiled, edges, groups = benchmark.pedantic(
        build_fig8, iterations=1, rounds=1
    )

    lines = ["phases:"]
    for phase, tasks in PHASES.items():
        lines.append(f"  {phase}: {', '.join(tasks)}")
    lines.append("")
    lines.append(groups.format())
    lines.append("")
    lines.append("DOT:")
    lines.append(taskflow_to_dot(edges, groups, "fig8-tracking-taskflow"))
    emit(
        "Figure 8: task flow of the Tracking benchmark",
        "\n".join(lines),
        artifact="fig8_taskflow.txt",
    )

    pairs = {(e.src, e.dst) for e in edges}
    # Phase 1: startup fans strips out to the image-processing chain.
    assert ("startup", "blurStrip") in pairs
    assert ("blurStrip", "gradientStrip") in pairs
    assert ("gradientStrip", "scoreStrip") in pairs
    # Phase 2: per-strip features merge into the tracker.
    assert ("scoreStrip", "collectFeatures") in pairs
    # Phase 3: the tracker spawns track chunks, merged back at the end.
    assert ("collectFeatures", "trackFeatures") in pairs
    assert ("trackFeatures", "mergeTracks") in pairs

    # All three phases are present as tasks.
    tasks = {t for e in edges for t in (e.src, e.dst)}
    for phase_tasks in PHASES.values():
        for task in phase_tasks:
            assert task in tasks, task
